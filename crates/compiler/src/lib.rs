//! The Manticore compiler: netlists → statically-scheduled machine binaries.
//!
//! The pipeline mirrors Fig. 4 of the paper:
//!
//! 1. **optimize** — netlist-level constant folding, CSE, DCE ([`opt`]);
//! 2. **lower** — width legalization onto the 16-bit datapath ([`lower`]);
//! 3. **optimize** — lower-assembly CSE/DCE ([`lir_opt`]);
//! 4. **partition** — split into per-sink cones, merge communication-aware
//!    ([`partition`]);
//! 5. **custom instructions** — MFFC fusion into 4-input LUT ops ([`cfu`]);
//! 6. **schedule** — list scheduling against the pipeline-hazard and
//!    NoC-routing models ([`schedule`]);
//! 7. **register allocation + emission** — persistent/linear-scan
//!    allocation, current/next coalescing, binary emission ([`regalloc`]).
//!
//! Both intermediate representations are executable: the netlist via
//! `manticore_netlist::eval` and the lower assembly via [`interp`] — the
//! compiler's differential-testing backbone, as in the paper.
//!
//! # Examples
//!
//! ```
//! use manticore_compiler::{compile, CompileOptions};
//! use manticore_netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("counter");
//! let r = b.reg("count", 16, 0);
//! let one = b.lit(1, 16);
//! let next = b.add(r.q(), one);
//! b.set_next(r, next);
//! let netlist = b.finish_build().unwrap();
//!
//! let out = compile(&netlist, &CompileOptions::default()).unwrap();
//! assert!(out.binary.vcycle_len > 0);
//! ```

pub mod bitset;
pub mod cfu;
pub mod error;
pub mod interp;
pub mod lir;
pub mod lir_opt;
pub mod lower;
pub mod opt;
pub mod partition;
pub mod regalloc;
pub mod report;
pub mod schedule;

#[cfg(test)]
mod tests;

use std::time::Instant;

use manticore_isa::{Binary, MachineConfig};
use manticore_netlist::Netlist;

pub use error::CompileError;
pub use partition::PartitionStrategy;
pub use report::{CompileReport, CoreBreakdown, MemLocation, Metadata, RegLocation, SplitStats};

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target machine configuration.
    pub config: MachineConfig,
    /// Merge strategy (the paper's `B` vs `L`, Fig. 9).
    pub partition: PartitionStrategy,
    /// Enable custom-function synthesis (§6.2; Fig. 10 ablates this).
    pub custom_functions: bool,
    /// Enable netlist-level optimization.
    pub netlist_opt: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            config: MachineConfig::default(),
            partition: PartitionStrategy::Balanced,
            custom_functions: true,
            netlist_opt: true,
        }
    }
}

/// A compiled design.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The loadable machine binary.
    pub binary: Binary,
    /// The optimized netlist actually compiled (RTL ids in the metadata
    /// refer to *this* netlist).
    pub optimized: Netlist,
    /// The partitioned lower-assembly program (drives the interpreter and
    /// the scaling analyses).
    pub lir: lir::LirProgram,
    /// Where RTL state lives on the machine.
    pub metadata: Metadata,
    /// Pass timings and instruction-mix statistics.
    pub report: CompileReport,
}

impl CompileOutput {
    /// Predicted simulation rate in kHz at the configured clock
    /// (`clock / VCPL` — the paper's headline metric).
    pub fn simulation_rate_khz(&self, config: &MachineConfig) -> f64 {
        config.simulation_rate_khz(self.report.vcpl)
    }
}

/// Compiles a netlist for the configured machine.
///
/// # Errors
///
/// See [`CompileError`]; notably designs with primary inputs are rejected
/// (test harnesses must be closed) and resource overflows are reported per
/// core.
pub fn compile(netlist: &Netlist, options: &CompileOptions) -> Result<CompileOutput, CompileError> {
    let mut report = CompileReport::default();
    let mut stamp = Instant::now();
    let mut lap = |report: &mut CompileReport, name: &'static str| {
        let now = Instant::now();
        report.pass_times.push((name, now - stamp));
        stamp = now;
    };

    // 1. Netlist optimization (stands in front of the Yosys boundary).
    let optimized = if options.netlist_opt {
        opt::optimize(netlist)
    } else {
        netlist.clone()
    };
    lap(&mut report, "netlist-opt");

    // 2. Lowering to 16-bit lower assembly (monolithic).
    let mut mono = lower::lower(&optimized, options.config.scratch_words)?;
    lap(&mut report, "lower");

    // 3. Lower-assembly optimization.
    lir_opt::optimize(&mut mono);
    lap(&mut report, "lir-opt");

    // 4. Partition (split + merge).
    let mut parted = partition::partition(&mono, options.config.num_cores(), options.partition);
    report.split = SplitStats {
        vertices: count_split_units(&mono),
        edges: count_split_edges(&parted),
    };
    lap(&mut report, "partition");

    // 5. Custom-function synthesis.
    if options.custom_functions {
        for p in &mut parted.processes {
            cfu::synthesize(p, options.config.num_custom_functions);
        }
        lir_opt::optimize(&mut parted);
    }
    lap(&mut report, "custom-functions");

    // 6. Scheduling.
    let schedule = schedule::schedule(&parted, &options.config)?;
    lap(&mut report, "schedule");

    // 7. Register allocation + emission.
    let emitted = regalloc::emit(&parted, &schedule, &options.config)?;
    lap(&mut report, "regalloc-emit");

    report.vcpl = schedule.vcycle_len;
    report.processes = parted.processes.len();
    report.cores_used = parted
        .processes
        .iter()
        .filter(|p| !p.instrs.is_empty())
        .count();
    report.per_core = emitted.per_core.clone();
    report.total_sends = emitted.per_core.iter().map(|b| b.sends).sum();
    report.total_custom = emitted.per_core.iter().map(|b| b.custom).sum();
    report.total_instructions = emitted.per_core.iter().map(|b| b.compute + b.sends).sum();

    Ok(CompileOutput {
        binary: emitted.binary,
        optimized,
        lir: parted,
        metadata: emitted.metadata,
        report,
    })
}

/// Number of sink seeds in the monolithic program — the vertex count of
/// the maximal split graph (Table 8's |V|), before affinity merging.
fn count_split_units(mono: &lir::LirProgram) -> usize {
    let p = &mono.processes[0];
    let mut units = 0usize;
    let mut mems = std::collections::HashSet::new();
    let mut has_priv = false;
    for i in &p.instrs {
        match &i.op {
            lir::LirOp::CommitLocal { .. } => units += 1,
            lir::LirOp::LocalStore { mem, .. } | lir::LirOp::GlobalStore { mem, .. } => {
                mems.insert(mem.0);
            }
            lir::LirOp::Expect { .. } => has_priv = true,
            _ => {}
        }
    }
    units + mems.len() + has_priv as usize
}

/// Communication edges between merged processes (state producer/consumer
/// pairs) — an |E| analog after merging.
fn count_split_edges(parted: &lir::LirProgram) -> usize {
    let mut edges = std::collections::HashSet::new();
    for (pi, p) in parted.processes.iter().enumerate() {
        for instr in &p.instrs {
            if let lir::LirOp::Send { to_process, .. } = instr.op {
                edges.insert((pi, to_process));
            }
        }
    }
    edges.len()
}
