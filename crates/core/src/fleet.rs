//! The fleet entry point: compile a design once, run many scenarios.
//!
//! [`FleetSim`] is the netlist-level face of [`manticore_fleet`]: it
//! compiles a design exactly once (netlist → binary → frozen
//! [`CompiledProgram`] with replay tape and micro-op streams), then runs
//! arbitrarily many [`FleetJob`]s against the shared artifact on a
//! work-stealing worker pool. Jobs differ in their *input vector* (RTL
//! registers overwritten by name before the run), engine knobs, and
//! Vcycle budget; results come back in submission order and are
//! bit-identical to running each job alone on a [`ManticoreSim`] — the
//! `fleet_equivalence` suite asserts exactly that.
//!
//! ```
//! use manticore::fleet::FleetSim;
//! use manticore::isa::MachineConfig;
//! use manticore::netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("counter");
//! let c = b.reg("count", 16, 0);
//! let one = b.lit(1, 16);
//! let next = b.add(c.q(), one);
//! b.set_next(c, next);
//! b.output("count", c.q());
//! let netlist = b.finish_build().unwrap();
//!
//! // One compilation, four scenarios with different starting counts,
//! // two workers.
//! let fleet = FleetSim::compile(&netlist, MachineConfig::with_grid(2, 2), 2)?;
//! let jobs: Vec<_> = (0..4)
//!     .map(|i| fleet.job(10).with_reg("count", i * 100).unwrap())
//!     .collect();
//! for (i, run) in fleet.run(jobs).into_iter().enumerate() {
//!     assert_eq!(run.index, i as usize);
//!     run.result.as_ref().unwrap();
//!     let count = run.sim().read_rtl_reg_by_name("count").unwrap().to_u64();
//!     assert_eq!(count, i as u64 * 100 + 10);
//! }
//! # Ok::<(), manticore::SimError>(())
//! ```

use std::sync::Arc;
use std::time::Instant;

use manticore_compiler::{compile, CompileOptions, CompileOutput};
use manticore_fleet::CompiledProgram;
pub use manticore_fleet::{
    BatchPolicy, ExploreConfig, ExploreReport, FaultKind, FaultPlan, FaultPoint, Fleet, JobOutcome,
    JobOutput, SimJob,
};
use manticore_isa::{CoreId, MachineConfig, Reg};
use manticore_machine::{ExecMode, GangMachine, Machine, ReplayEngine, RunOutcome};
use manticore_util::CancelToken;

use crate::sim::{SimOutcome, SimPerf, Simulator};
use crate::{ManticoreSim, SimError};
use manticore_netlist::Netlist;

/// A design compiled once and shared by every job: the entry point for
/// compile-once / run-many simulation. See the module docs for a worked
/// example.
#[derive(Debug)]
pub struct FleetSim {
    output: Arc<CompileOutput>,
    program: Arc<CompiledProgram>,
    fleet: Fleet,
}

/// One scenario in a fleet batch: the shared program plus this run's
/// input vector (RTL register overwrites), engine knobs, and Vcycle
/// budget. Built by [`FleetSim::job`].
#[derive(Debug)]
pub struct FleetJob {
    inner: SimJob,
    output: Arc<CompileOutput>,
}

impl FleetJob {
    /// Sets RTL register `name` to `value` before the run starts — one
    /// element of the job's input vector. The register is resolved
    /// through the compiler's placement metadata and written into every
    /// machine register word it was mapped to (LSW first; `value` is
    /// truncated to the register's width, and registers wider than 64
    /// bits have their high words cleared).
    ///
    /// # Errors
    ///
    /// An unknown register name yields [`SimError::Assert`] describing
    /// the lookup failure (the job cannot run with a silently dropped
    /// input).
    pub fn with_reg(mut self, name: &str, value: u64) -> Result<FleetJob, SimError> {
        let words = crate::rtl_reg_words(&self.output, name, value).ok_or_else(|| {
            SimError::Assert(format!(
                "fleet job input names RTL register `{name}`, which does not exist \
                 in the optimized design"
            ))
        })?;
        for (core, mreg, word) in words {
            self.inner = self.inner.poke(core, mreg, word);
        }
        Ok(self)
    }

    /// Adds one raw machine-level element to the input vector: overwrite
    /// `reg` on `core` with `value` before the run starts. The
    /// netlist-level mirror of [`manticore_fleet::SimJob::poke`], for
    /// callers that already hold placement coordinates; named RTL
    /// registers should go through [`FleetJob::with_reg`], which resolves
    /// and width-masks them.
    #[must_use]
    pub fn poke(mut self, core: CoreId, reg: Reg, value: u16) -> FleetJob {
        self.inner = self.inner.poke(core, reg, value);
        self
    }

    /// Selects the execution engine for this job (serial, or sharded BSP
    /// with a shard count).
    #[must_use]
    pub fn exec_mode(mut self, mode: ExecMode) -> FleetJob {
        self.inner = self.inner.exec_mode(mode);
        self
    }

    /// Enables or disables the validate-once / replay-many fast path.
    #[must_use]
    pub fn replay(mut self, enabled: bool) -> FleetJob {
        self.inner = self.inner.replay(enabled);
        self
    }

    /// Selects the replay lowering (tape or fused micro-ops).
    #[must_use]
    pub fn replay_engine(mut self, engine: ReplayEngine) -> FleetJob {
        self.inner = self.inner.replay_engine(engine);
        self
    }

    /// Selects strict or permissive hazard checking.
    #[must_use]
    pub fn strict_hazards(mut self, strict: bool) -> FleetJob {
        self.inner = self.inner.strict_hazards(strict);
        self
    }

    /// Attaches a wall-clock deadline to this job alone — see
    /// [`manticore_fleet::SimJob::deadline`]. Combines with a batch
    /// deadline ([`BatchPolicy::deadline`]) by taking the earlier one.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> FleetJob {
        self.inner = self.inner.deadline(deadline);
        self
    }

    /// Attaches a cancellation token to this job alone — see
    /// [`manticore_fleet::SimJob::cancel_token`]. Tripping it stops this
    /// run at the next Vcycle boundary without touching its batch-mates;
    /// it combines with a batch token ([`BatchPolicy::cancel`]) so
    /// whichever trips first wins.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> FleetJob {
        self.inner = self.inner.cancel_token(token);
        self
    }

    /// Unwraps the machine-level [`SimJob`], discarding the placement
    /// metadata handle — for callers that mix jobs from several designs
    /// into one [`Fleet`] batch (each `SimJob` carries its own program).
    pub fn into_sim_job(self) -> SimJob {
        self.inner
    }
}

/// One finished fleet scenario: the submission index, the typed
/// [`JobOutcome`], the run result, and a full [`ManticoreSim`] wrapped
/// around the finished machine — read registers back, inspect counters,
/// or keep running it.
#[derive(Debug)]
pub struct FleetRun {
    /// The job's position in the submitted batch; [`FleetSim::run`]
    /// returns runs sorted by it.
    pub index: usize,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// The run outcome, or the failure that aborted it.
    pub result: Result<RunOutcome, SimError>,
    /// The finished simulation (its displays already include this run's
    /// output, also on the error path). `None` only when the job's worker
    /// panicked ([`JobOutcome::WorkerPanic`]) — unwound state is never
    /// exposed.
    pub sim: Option<ManticoreSim>,
}

impl FleetRun {
    /// The surviving simulation.
    ///
    /// # Panics
    ///
    /// If the job's worker panicked ([`JobOutcome::WorkerPanic`]) — check
    /// [`FleetRun::sim`] when the batch ran under a panic-injecting
    /// [`FaultPlan`].
    pub fn sim(&self) -> &ManticoreSim {
        self.sim
            .as_ref()
            .expect("job's worker panicked: no simulation state survives")
    }

    /// Consumes the run, yielding the surviving simulation; panics like
    /// [`FleetRun::sim`].
    pub fn into_sim(self) -> ManticoreSim {
        self.sim
            .expect("job's worker panicked: no simulation state survives")
    }
}

impl FleetSim {
    /// Compiles `netlist` once with default options for `config` and
    /// attaches a fleet of `workers` worker threads.
    ///
    /// # Errors
    ///
    /// Compilation or load failure.
    pub fn compile(
        netlist: &Netlist,
        config: MachineConfig,
        workers: usize,
    ) -> Result<FleetSim, SimError> {
        // Compile with the same worker count the fleet will run with; the
        // parallel pipeline's output is bit-identical to the serial one.
        Self::compile_with(
            netlist,
            &CompileOptions {
                config,
                compile_threads: workers.max(1),
                ..Default::default()
            },
            workers,
        )
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Compilation or load failure.
    pub fn compile_with(
        netlist: &Netlist,
        options: &CompileOptions,
        workers: usize,
    ) -> Result<FleetSim, SimError> {
        let output = Arc::new(compile(netlist, options)?);
        Self::from_output(output, options.config.clone(), workers)
    }

    /// Builds a fleet over an already-compiled design, freezing the
    /// machine-level program once.
    ///
    /// # Errors
    ///
    /// Load failure (binary does not fit `config`).
    pub fn from_output(
        output: Arc<CompileOutput>,
        config: MachineConfig,
        workers: usize,
    ) -> Result<FleetSim, SimError> {
        let program = CompiledProgram::compile_shared(config, &output.binary)?;
        Ok(FleetSim {
            output,
            program,
            fleet: Fleet::new(workers),
        })
    }

    /// The shared frozen machine program (replay tape and micro-op
    /// streams included).
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// The shared compiler output (binary, report, placement metadata).
    pub fn output(&self) -> &Arc<CompileOutput> {
        &self.output
    }

    /// The fleet's worker count.
    pub fn workers(&self) -> usize {
        self.fleet.workers()
    }

    /// A new job against the shared program with a budget of `vcycles`,
    /// ready for input-vector and knob configuration.
    pub fn job(&self, vcycles: u64) -> FleetJob {
        FleetJob {
            inner: SimJob::new(&self.program, vcycles),
            output: Arc::clone(&self.output),
        }
    }

    /// Runs the batch on the worker pool and returns the outcomes **in
    /// submission order** (`runs[i]` belongs to `jobs[i]`), regardless of
    /// worker interleaving.
    pub fn run(&self, jobs: Vec<FleetJob>) -> Vec<FleetRun> {
        self.run_with(jobs, &BatchPolicy::default())
    }

    /// [`FleetSim::run`] under a [`BatchPolicy`]: cooperative
    /// cancellation, a batch deadline, fail-fast, and/or a deterministic
    /// [`FaultPlan`] — see [`manticore_fleet::Fleet::run_with`].
    pub fn run_with(&self, jobs: Vec<FleetJob>, policy: &BatchPolicy) -> Vec<FleetRun> {
        let sim_jobs: Vec<SimJob> = jobs.into_iter().map(|j| j.inner).collect();
        self.wrap_outputs(self.fleet.run_with(sim_jobs, policy))
    }

    /// [`FleetSim::run_with`], streaming: each [`FleetRun`] is handed to
    /// `sink` **as its job finishes** (completion order — reorder by
    /// [`FleetRun::index`] if needed) instead of being held until the
    /// batch barrier. See [`manticore_fleet::Fleet::run_stream`]; results
    /// are bit-identical to [`FleetSim::run_with`].
    pub fn run_stream(
        &self,
        jobs: Vec<FleetJob>,
        policy: &BatchPolicy,
        sink: &(dyn Fn(FleetRun) + Sync),
    ) {
        let sim_jobs: Vec<SimJob> = jobs.into_iter().map(|j| j.inner).collect();
        self.fleet
            .run_stream(sim_jobs, policy, &|out| sink(self.wrap_output(out)));
    }

    /// Like [`FleetSim::run`], with lane batching: compatible jobs (same
    /// knobs and budget — the input vectors may differ freely) execute up
    /// to `lanes` at a time in lockstep on a gang machine, one micro-op
    /// fetch per gang instead of per scenario. Bit-identical to
    /// [`FleetSim::run`], still in submission order; see
    /// [`Fleet::run_ganged`].
    pub fn run_ganged(&self, jobs: Vec<FleetJob>, lanes: usize) -> Vec<FleetRun> {
        self.run_ganged_with(jobs, lanes, &BatchPolicy::default())
    }

    /// [`FleetSim::run_ganged`] under a [`BatchPolicy`] — see
    /// [`FleetSim::run_with`]. An injected [`FaultKind::Error`] parks just
    /// its lane; the lane-mates run to completion.
    pub fn run_ganged_with(
        &self,
        jobs: Vec<FleetJob>,
        lanes: usize,
        policy: &BatchPolicy,
    ) -> Vec<FleetRun> {
        let sim_jobs: Vec<SimJob> = jobs.into_iter().map(|j| j.inner).collect();
        self.wrap_outputs(self.fleet.run_ganged_with(sim_jobs, lanes, policy))
    }

    /// Coverage-guided scenario-tree exploration over this design
    /// ([`manticore_fleet::Fleet::explore`] at the netlist level):
    /// repeatedly checkpoints frontier states, forks each into a gang of
    /// children with fuzzed stimulus on the named RTL registers, and
    /// keeps the children that raise toggle coverage. `stimulus` names
    /// are resolved through the compiler's placement metadata into
    /// per-word `(core, reg, mask)` triples — fuzz values are masked to
    /// each register's width, exactly like [`FleetJob::with_reg`] inputs.
    /// Any stimulus already present in `cfg` is kept.
    ///
    /// # Errors
    ///
    /// [`SimError::Assert`] for an unknown stimulus register name, or the
    /// root warm-up's failure.
    pub fn explore(
        &self,
        stimulus: &[&str],
        cfg: &ExploreConfig,
    ) -> Result<ExploreReport, SimError> {
        self.explore_with(stimulus, cfg, &BatchPolicy::default())
    }

    /// [`FleetSim::explore`] under a [`BatchPolicy`] — see
    /// [`manticore_fleet::Fleet::explore_with`] for how cancellation,
    /// deadlines, and fault injection interact with the tree's
    /// determinism.
    ///
    /// # Errors
    ///
    /// Same as [`FleetSim::explore`].
    pub fn explore_with(
        &self,
        stimulus: &[&str],
        cfg: &ExploreConfig,
        policy: &BatchPolicy,
    ) -> Result<ExploreReport, SimError> {
        let mut cfg = cfg.clone();
        for name in stimulus {
            // Resolving with an all-ones value yields each word's width
            // mask, which is exactly what the fuzzer needs.
            let words = crate::rtl_reg_words(&self.output, name, u64::MAX).ok_or_else(|| {
                SimError::Assert(format!(
                    "exploration stimulus names RTL register `{name}`, which does not \
                     exist in the optimized design"
                ))
            })?;
            for (core, mreg, mask) in words {
                cfg.stimulus.push((core, mreg, mask));
            }
        }
        self.fleet
            .explore_with(&self.program, &cfg, policy)
            .map_err(SimError::from)
    }

    fn wrap_outputs(&self, outputs: Vec<JobOutput>) -> Vec<FleetRun> {
        outputs
            .into_iter()
            .map(|out| self.wrap_output(out))
            .collect()
    }

    fn wrap_output(&self, out: JobOutput) -> FleetRun {
        let Some(mut machine) = out.machine else {
            // The job's worker panicked: there is no machine to wrap,
            // only the structured failure.
            return FleetRun {
                index: out.index,
                outcome: out.outcome,
                result: Err(out
                    .result
                    .expect_err("a panicked job always carries an error")
                    .into()),
                sim: None,
            };
        };
        let (result, displays) = match out.result {
            Ok(outcome) => {
                let displays = outcome.displays.clone();
                (Ok(outcome), displays)
            }
            // Keep displays observable on the error path, the way
            // `ManticoreSim::run` does.
            Err(e) => (Err(e.into()), machine.drain_pending_displays()),
        };
        FleetRun {
            index: out.index,
            outcome: out.outcome,
            result,
            sim: Some(ManticoreSim::from_existing(
                machine,
                Arc::clone(&self.output),
                displays,
            )),
        }
    }
}

// ---------------------------------------------------------------------
// The fleet rows of `backends()`
// ---------------------------------------------------------------------

/// A [`Simulator`] backend that executes on a fleet worker pool: each
/// `run_cycles` call dispatches the machine to the pool as a one-job
/// batch and takes it back afterwards. Architecturally identical to the
/// direct machine backends (same `Machine`, same engines) — what it adds
/// is coverage: the fleet dispatch path runs under every agreement test
/// that sweeps [`crate::sim::backends`].
#[derive(Debug)]
pub struct FleetBackend {
    fleet: Fleet,
    /// `None` only transiently inside `run_cycles`.
    machine: Option<Machine>,
    output: Arc<CompileOutput>,
    displays: Vec<String>,
    wall_seconds: f64,
}

impl FleetBackend {
    /// Wraps a fresh run of `program` in a fleet of `workers`.
    pub fn new(
        program: &Arc<CompiledProgram>,
        output: Arc<CompileOutput>,
        workers: usize,
    ) -> FleetBackend {
        FleetBackend {
            fleet: Fleet::new(workers),
            machine: Some(Machine::from_program(Arc::clone(program))),
            output,
            displays: Vec::new(),
            wall_seconds: 0.0,
        }
    }
}

impl Simulator for FleetBackend {
    fn backend(&self) -> String {
        let base = format!("manticore-fleet({})", self.fleet.workers());
        // Same replay-lowering suffix convention as the direct machine
        // backends (`ManticoreSim::backend`).
        let machine = self.machine.as_ref().expect("machine present at rest");
        if machine.replay_armed() {
            match machine.replay_engine() {
                ReplayEngine::Tape => format!("{base}+replay"),
                ReplayEngine::MicroOps => format!("{base}+uops"),
            }
        } else {
            base
        }
    }

    fn run_cycles(&mut self, max_cycles: u64) -> Result<SimOutcome, SimError> {
        let machine = self.machine.take().expect("machine is only taken here");
        let start = Instant::now();
        let mut outputs = self.fleet.run(vec![SimJob::resume(machine, max_cycles)]);
        self.wall_seconds += start.elapsed().as_secs_f64();
        let out = outputs.pop().expect("one job in, one output out");
        // A single resumed job under the default (empty) fault plan never
        // panics its worker, so the machine always survives.
        let mut machine = out
            .machine
            .expect("resumed job without injected faults keeps its machine");
        let result = match out.result {
            Ok(outcome) => {
                self.displays.extend(outcome.displays.iter().cloned());
                Ok(SimOutcome {
                    cycles_run: outcome.vcycles_run,
                    finished: outcome.finished,
                    displays: outcome.displays,
                })
            }
            Err(e) => {
                self.displays.extend(machine.drain_pending_displays());
                Err(e.into())
            }
        };
        self.machine = Some(machine);
        result
    }

    fn displays(&self) -> &[String] {
        &self.displays
    }

    fn perf(&self) -> SimPerf {
        let machine = self.machine.as_ref().expect("machine present at rest");
        let counters = machine.counters();
        SimPerf {
            cycles: counters.vcycles,
            wall_seconds: self.wall_seconds,
            model_rate_khz: Some(machine.config().simulation_rate_khz(machine.vcycle_len())),
            counters: Some(counters),
        }
    }

    fn rtl_reg(&self, name: &str) -> Option<manticore_bits::Bits> {
        let machine = self.machine.as_ref().expect("machine present at rest");
        crate::rtl_reg_of(machine, &self.output, name)
    }
}

// ---------------------------------------------------------------------
// The gang rows of `backends()`
// ---------------------------------------------------------------------

/// A [`Simulator`] backend that executes as a `k`-lane lockstep gang
/// ([`GangMachine`]): every lane boots the same design, `run_cycles`
/// advances all of them together, and the trait's observers read lane 0.
/// Architecturally identical to the direct machine backends — what it
/// adds is coverage of the lane-batched dispatch, the lane-major state
/// layout, and the gather/scatter fallback, under every agreement test
/// that sweeps [`crate::sim::backends`].
#[derive(Debug)]
pub struct GangBackend {
    gang: GangMachine,
    output: Arc<CompileOutput>,
    displays: Vec<String>,
    wall_seconds: f64,
}

impl GangBackend {
    /// Boots a `lanes`-lane gang of `program`.
    pub fn new(
        program: &Arc<CompiledProgram>,
        output: Arc<CompileOutput>,
        lanes: usize,
    ) -> GangBackend {
        GangBackend {
            gang: GangMachine::from_program(Arc::clone(program), lanes),
            output,
            displays: Vec::new(),
            wall_seconds: 0.0,
        }
    }

    /// Selects the gang-wide replay lowering (micro-ops run the ganged
    /// inner loop; the tape runs each lane through the solo engine).
    pub fn set_replay_engine(&mut self, engine: ReplayEngine) {
        self.gang.set_replay_engine(engine);
    }
}

impl Simulator for GangBackend {
    fn backend(&self) -> String {
        let base = format!("manticore-gang({})", self.gang.lanes());
        // Same replay-lowering suffix convention as the other machine
        // backends.
        if self.gang.replay_armed() {
            match self.gang.replay_engine() {
                ReplayEngine::Tape => format!("{base}+replay"),
                ReplayEngine::MicroOps => format!("{base}+uops"),
            }
        } else {
            base
        }
    }

    fn run_cycles(&mut self, max_cycles: u64) -> Result<SimOutcome, SimError> {
        let start = Instant::now();
        let mut results = self.gang.run_vcycles(max_cycles);
        self.wall_seconds += start.elapsed().as_secs_f64();
        // Lane 0 is the face of the backend; the other lanes execute the
        // identical scenario in lockstep and must agree with it.
        match results.swap_remove(0) {
            Ok(outcome) => {
                self.displays.extend(outcome.displays.iter().cloned());
                Ok(SimOutcome {
                    cycles_run: outcome.vcycles_run,
                    finished: outcome.finished,
                    displays: outcome.displays,
                })
            }
            Err(e) => {
                self.displays.extend(self.gang.drain_pending_displays(0));
                Err(e.into())
            }
        }
    }

    fn displays(&self) -> &[String] {
        &self.displays
    }

    fn perf(&self) -> SimPerf {
        let counters = self.gang.counters(0);
        SimPerf {
            cycles: counters.vcycles,
            wall_seconds: self.wall_seconds,
            model_rate_khz: Some(
                self.gang
                    .config()
                    .simulation_rate_khz(self.gang.vcycle_len()),
            ),
            counters: Some(counters),
        }
    }

    fn rtl_reg(&self, name: &str) -> Option<manticore_bits::Bits> {
        crate::rtl_reg_read(&self.output, name, |core, mreg| {
            self.gang.read_reg(0, core, mreg)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manticore_netlist::NetlistBuilder;

    fn counter_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg("count", 16, 0);
        let one = b.lit(1, 16);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        b.output("count", r.q());
        b.finish_build().unwrap()
    }

    #[test]
    fn fleet_sim_runs_distinct_inputs_in_order() {
        let n = counter_netlist();
        let fleet = FleetSim::compile(&n, MachineConfig::with_grid(2, 2), 3).unwrap();
        let jobs: Vec<FleetJob> = (0..7u64)
            .map(|i| fleet.job(5).with_reg("count", i * 1000).unwrap())
            .collect();
        let runs = fleet.run(jobs);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.index, i);
            assert!(run.result.is_ok());
            assert!(!run.outcome.is_failure());
            assert_eq!(
                run.sim().read_rtl_reg_by_name("count").unwrap().to_u64(),
                i as u64 * 1000 + 5
            );
        }
    }

    #[test]
    fn unknown_register_is_an_error_not_a_silent_noop() {
        let n = counter_netlist();
        let fleet = FleetSim::compile(&n, MachineConfig::with_grid(2, 2), 1).unwrap();
        assert!(fleet.job(1).with_reg("no_such_reg", 1).is_err());
    }
}
