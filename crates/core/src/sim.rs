//! The unified simulation interface: one trait over every backend.
//!
//! The repository contains several ways to execute the same RTL design:
//!
//! | backend | engine | crate |
//! |---|---|---|
//! | `manticore-serial` | machine grid, one thread | `manticore_machine` |
//! | `manticore-serial+replay` | machine grid, validate-once / replay-many tape | `manticore_machine` |
//! | `manticore-serial+uops` | machine grid, fused micro-op replay over SoA state | `manticore_machine` |
//! | `manticore-parallel(k)` | machine grid, `k` BSP shards | `manticore_machine` |
//! | `manticore-fleet(k)` | machine grid dispatched through a `k`-worker fleet pool | `manticore_fleet` |
//! | `manticore-gang(k)` | `k` lockstep lanes over lane-major state, one micro-op fetch per gang | `manticore_machine` |
//! | `tape-serial` | Verilator-analog tape, one thread | `manticore_refsim` |
//! | `tape-parallel(k)` | Verilator-analog macro-tasks, `k` threads | `manticore_refsim` |
//!
//! The machine backends accept a `+replay` or `+uops` suffix in their
//! reported names: the Vcycle-periodic replay fast path is on by default
//! and bit-identical in either lowering (see `manticore_machine`'s crate
//! docs), so agreement tests sweep both explicitly.
//!
//! Before this trait existed, every experiment binary and agreement test
//! hand-rolled its own glue per backend. [`Simulator`] gives them one
//! vocabulary: run cycles, read displays, read performance, read an RTL
//! register back by name.

use std::sync::Arc;
use std::time::Instant;

use manticore_bits::Bits;
use manticore_compiler::{compile, CompileOptions};
use manticore_machine::{ExecMode, PerfCounters, ReplayEngine};
use manticore_netlist::Netlist;
use manticore_refsim::{serial, MacroTaskPlan, Tape, TapeState};

use crate::{ManticoreSim, SimError};

/// Outcome of one [`Simulator::run_cycles`] call.
#[derive(Debug, Clone, Default)]
pub struct SimOutcome {
    /// Cycles actually simulated (fewer than requested if the design
    /// finished).
    pub cycles_run: u64,
    /// True if `$finish` fired during this call.
    pub finished: bool,
    /// `$display` output produced during this call, in order.
    pub displays: Vec<String>,
}

/// Performance snapshot of a backend, cumulative since construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimPerf {
    /// Simulated RTL cycles so far.
    pub cycles: u64,
    /// Host wall-clock seconds spent simulating.
    pub wall_seconds: f64,
    /// Modeled hardware rate in kHz (machine backends: `clock / VCPL`),
    /// the paper's Table 3 metric. `None` for host-measured backends.
    pub model_rate_khz: Option<f64>,
    /// Hardware performance counters (machine backends only).
    pub counters: Option<PerfCounters>,
}

impl SimPerf {
    /// Host-measured simulation rate in kHz.
    pub fn measured_rate_khz(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.wall_seconds / 1e3
        }
    }
}

/// A resumable RTL simulation backend.
///
/// Implementations hold the design *and* its simulation state: successive
/// [`Simulator::run_cycles`] calls continue where the last one stopped,
/// and all observers (`displays`, `perf`, `rtl_reg`) reflect everything
/// simulated so far.
///
/// # Examples
///
/// Drive the same counter design on two backends and compare them through
/// nothing but the trait:
///
/// ```
/// use manticore::netlist::NetlistBuilder;
/// use manticore::sim::{backends, Simulator};
///
/// let mut b = NetlistBuilder::new("counter");
/// let c = b.reg("count", 16, 0);
/// let one = b.lit(1, 16);
/// let next = b.add(c.q(), one);
/// b.set_next(c, next);
/// b.output("count", c.q());
/// let netlist = b.finish_build().unwrap();
///
/// let config = manticore::isa::MachineConfig::with_grid(2, 2);
/// for mut sim in backends(&netlist, config, 2)? {
///     let outcome = sim.run_cycles(25)?;
///     assert_eq!(outcome.cycles_run, 25, "{}", sim.backend());
///     assert_eq!(sim.rtl_reg("count").unwrap().to_u64(), 25);
///     assert_eq!(sim.perf().cycles, 25);
/// }
/// # Ok::<(), manticore::SimError>(())
/// ```
pub trait Simulator {
    /// Short backend identifier, e.g. `manticore-parallel(4)`.
    fn backend(&self) -> String;

    /// Simulates up to `max_cycles` RTL cycles from the current state.
    ///
    /// # Errors
    ///
    /// Determinism violations and assertion failures abort the run.
    fn run_cycles(&mut self, max_cycles: u64) -> Result<SimOutcome, SimError>;

    /// All `$display` output so far, in order.
    fn displays(&self) -> &[String];

    /// Cumulative performance snapshot.
    fn perf(&self) -> SimPerf;

    /// Reads an RTL register back by its netlist name. `None` if the
    /// design (as this backend compiled it) has no such register.
    fn rtl_reg(&self, name: &str) -> Option<Bits>;
}

// ---------------------------------------------------------------------
// Machine-grid backend (ManticoreSim implements the trait directly)
// ---------------------------------------------------------------------

impl Simulator for ManticoreSim {
    fn backend(&self) -> String {
        let base = match self.machine().exec_mode() {
            ExecMode::Serial => "manticore-serial".to_string(),
            ExecMode::Parallel { shards } => format!("manticore-parallel({shards})"),
        };
        if self.machine().replay_armed() {
            match self.machine().replay_engine() {
                ReplayEngine::Tape => format!("{base}+replay"),
                ReplayEngine::MicroOps => format!("{base}+uops"),
            }
        } else {
            base
        }
    }

    fn run_cycles(&mut self, max_cycles: u64) -> Result<SimOutcome, SimError> {
        let outcome = self.run(max_cycles)?;
        Ok(SimOutcome {
            cycles_run: outcome.vcycles_run,
            finished: outcome.finished,
            displays: outcome.displays,
        })
    }

    fn displays(&self) -> &[String] {
        self.all_displays()
    }

    fn perf(&self) -> SimPerf {
        let counters = self.machine().counters();
        SimPerf {
            cycles: counters.vcycles,
            wall_seconds: self.wall_seconds(),
            model_rate_khz: Some(self.simulation_rate_khz()),
            counters: Some(counters),
        }
    }

    fn rtl_reg(&self, name: &str) -> Option<Bits> {
        self.read_rtl_reg_by_name(name)
    }
}

// ---------------------------------------------------------------------
// Tape backends (Verilator analog)
// ---------------------------------------------------------------------

/// Which executor a [`TapeSim`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeMode {
    /// Single-threaded full-cycle evaluation.
    Serial,
    /// Macro-task parallel evaluation (`verilator --threads` analog).
    Parallel {
        /// Worker-thread count.
        threads: usize,
        /// Minimum ops per macro-task during coarsening.
        grain: usize,
    },
}

/// The Verilator-analog baseline as a [`Simulator`]: owns the compiled
/// tape and its state, so it is resumable across `run_cycles` calls and
/// can even switch executors between them.
#[derive(Debug)]
pub struct TapeSim {
    tape: Tape,
    state: TapeState,
    mode: TapeMode,
    /// Macro-task plan, built once at construction (parallel mode only).
    plan: Option<MacroTaskPlan>,
    reg_names: Vec<String>,
    displays: Vec<String>,
    finished: bool,
    wall_seconds: f64,
}

impl TapeSim {
    /// Compiles `netlist` for the given executor.
    ///
    /// # Errors
    ///
    /// Tape compilation fails on nets wider than 64 bits.
    pub fn new(netlist: &Netlist, mode: TapeMode) -> Result<Self, SimError> {
        let tape = Tape::compile(netlist).map_err(SimError::Tape)?;
        let plan = match mode {
            TapeMode::Serial => None,
            TapeMode::Parallel { threads, grain } => {
                Some(MacroTaskPlan::build(&tape, threads, grain))
            }
        };
        Ok(TapeSim {
            state: TapeState::new(&tape),
            tape,
            mode,
            plan,
            reg_names: netlist.registers().iter().map(|r| r.name.clone()).collect(),
            displays: Vec::new(),
            finished: false,
            wall_seconds: 0.0,
        })
    }

    /// Single-threaded baseline.
    ///
    /// # Errors
    ///
    /// Tape compilation failure.
    pub fn serial(netlist: &Netlist) -> Result<Self, SimError> {
        Self::new(netlist, TapeMode::Serial)
    }

    /// Macro-task parallel baseline.
    ///
    /// # Errors
    ///
    /// Tape compilation failure.
    pub fn parallel(netlist: &Netlist, threads: usize, grain: usize) -> Result<Self, SimError> {
        Self::new(netlist, TapeMode::Parallel { threads, grain })
    }

    /// The compiled tape (op count, step size).
    pub fn tape(&self) -> &Tape {
        &self.tape
    }
}

impl Simulator for TapeSim {
    fn backend(&self) -> String {
        match self.mode {
            TapeMode::Serial => "tape-serial".into(),
            TapeMode::Parallel { threads, .. } => format!("tape-parallel({threads})"),
        }
    }

    fn run_cycles(&mut self, max_cycles: u64) -> Result<SimOutcome, SimError> {
        if self.finished {
            return Ok(SimOutcome::default());
        }
        let mut outcome = SimOutcome::default();
        let start = Instant::now();
        match self.mode {
            TapeMode::Serial => {
                for _ in 0..max_cycles {
                    let ev = serial::step_state(&self.tape, &mut self.state);
                    outcome.cycles_run += 1;
                    outcome.displays.extend(ev.displays);
                    if let Some(m) = ev.failed_assert {
                        self.wall_seconds += start.elapsed().as_secs_f64();
                        self.displays.extend(outcome.displays);
                        return Err(SimError::Assert(m));
                    }
                    if ev.finished {
                        outcome.finished = true;
                        break;
                    }
                }
            }
            TapeMode::Parallel { .. } => {
                let plan = self.plan.as_ref().expect("parallel mode has a plan");
                let run = plan.run_with(&self.tape, &mut self.state, max_cycles);
                outcome.cycles_run = run.stats.cycles;
                outcome.finished = run.stats.finished;
                outcome.displays = run.displays;
                if let Some(m) = run.failed_assert {
                    self.wall_seconds += start.elapsed().as_secs_f64();
                    self.displays.extend(outcome.displays);
                    return Err(SimError::Assert(m));
                }
            }
        }
        self.wall_seconds += start.elapsed().as_secs_f64();
        self.displays.extend(outcome.displays.iter().cloned());
        if outcome.finished {
            self.finished = true;
        }
        Ok(outcome)
    }

    fn displays(&self) -> &[String] {
        &self.displays
    }

    fn perf(&self) -> SimPerf {
        SimPerf {
            cycles: self.state.cycle,
            wall_seconds: self.wall_seconds,
            model_rate_khz: None,
            counters: None,
        }
    }

    fn rtl_reg(&self, name: &str) -> Option<Bits> {
        let idx = self.reg_names.iter().position(|n| n == name)?;
        Some(self.state.reg_value(&self.tape, idx))
    }
}

// ---------------------------------------------------------------------
// Convenience constructors
// ---------------------------------------------------------------------

/// Builds one of every backend for `netlist`: Manticore serial (the
/// position-by-position reference interpreter), Manticore serial with the
/// validate-once / replay-many tape, Manticore serial with the fused
/// micro-op replay stream, Manticore with `threads` BSP shards (replaying
/// micro-ops), the fleet-dispatched machine (a `threads`-worker pool),
/// the lane-batched gang machine (a `threads`-lane lockstep gang, in both
/// replay lowerings), tape serial, and tape parallel with `threads`
/// workers.
///
/// All machine-grid backends share **one** compilation *and* one frozen
/// [`manticore_machine::CompiledProgram`] — the replay tape and micro-op
/// streams are built once and aliased, the compile-once / run-many path
/// the fleet engine scales up.
///
/// # Errors
///
/// Compilation or load failure on any backend.
pub fn backends(
    netlist: &Netlist,
    config: manticore_isa::MachineConfig,
    threads: usize,
) -> Result<Vec<Box<dyn Simulator>>, SimError> {
    // One compilation and one frozen program feed all machine backends.
    // The compile reuses the same worker count as the execution backends —
    // the parallel pipeline is bit-identical to the serial one, so every
    // agreement sweep over `backends` also cross-checks it.
    let options = CompileOptions {
        config: config.clone(),
        compile_threads: threads.max(1),
        ..Default::default()
    };
    let output = Arc::new(compile(netlist, &options)?);
    let program = manticore_machine::CompiledProgram::compile_shared(config, &output.binary)?;
    let mut serial_machine = ManticoreSim::from_program(program.clone(), output.clone());
    serial_machine.set_exec_mode(ExecMode::Serial);
    serial_machine.set_replay(false);
    let mut replay_machine = ManticoreSim::from_program(program.clone(), output.clone());
    replay_machine.set_exec_mode(ExecMode::Serial);
    replay_machine.set_replay_engine(ReplayEngine::Tape);
    let mut uop_machine = ManticoreSim::from_program(program.clone(), output.clone());
    uop_machine.set_exec_mode(ExecMode::Serial);
    uop_machine.set_replay_engine(ReplayEngine::MicroOps);
    let mut parallel_machine = ManticoreSim::from_program(program.clone(), output.clone());
    parallel_machine.set_exec_mode(ExecMode::Parallel { shards: threads });
    // One fleet row: its `run_cycles` dispatches a single resume job, so
    // the pool engages one worker per call regardless of capacity — the
    // coverage it adds is the dispatch/steal path itself, which a second
    // row would merely repeat.
    let fleet = crate::fleet::FleetBackend::new(&program, output.clone(), threads);
    // Two gang rows: the micro-op lowering exercises the ganged inner
    // loop (plus the per-lane validation fallback), the tape lowering
    // keeps the lane gather/scatter path under the agreement sweep.
    let gang_uops = crate::fleet::GangBackend::new(&program, output.clone(), threads);
    let mut gang_tape = crate::fleet::GangBackend::new(&program, output, threads);
    gang_tape.set_replay_engine(ReplayEngine::Tape);
    Ok(vec![
        Box::new(serial_machine),
        Box::new(replay_machine),
        Box::new(uop_machine),
        Box::new(parallel_machine),
        Box::new(fleet),
        Box::new(gang_uops),
        Box::new(gang_tape),
        Box::new(TapeSim::serial(netlist)?),
        Box::new(TapeSim::parallel(netlist, threads, 32)?),
    ])
}
