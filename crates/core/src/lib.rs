//! # Manticore: hardware-accelerated RTL simulation, in software
//!
//! A reproduction of *"Manticore: Hardware-Accelerated RTL Simulation with
//! Static Bulk-Synchronous Parallelism"* (ASPLOS 2024): a compiler that
//! statically schedules RTL simulation onto a grid of simple 16-bit cores
//! with zero runtime synchronization, plus a cycle-accurate model of that
//! grid, a Verilator-analog baseline simulator, and the paper's nine
//! benchmark workloads.
//!
//! ## Quick start
//!
//! ```
//! use manticore::prelude::*;
//!
//! // Describe a circuit (the netlist DSL stands in for the Verilog
//! // frontend).
//! let mut b = NetlistBuilder::new("counter");
//! let count = b.reg("count", 16, 0);
//! let one = b.lit(1, 16);
//! let next = b.add(count.q(), one);
//! b.set_next(count, next);
//! let limit = b.lit(100, 16);
//! let done = b.eq(count.q(), limit);
//! b.finish(done);
//! let netlist = b.finish_build()?;
//!
//! // Compile for a 2×2 grid and simulate on the Manticore machine model.
//! let config = MachineConfig::with_grid(2, 2);
//! let mut sim = ManticoreSim::compile(&netlist, config)?;
//! let outcome = sim.run(1_000)?;
//! assert!(outcome.finished);
//! assert_eq!(outcome.vcycles_run, 101);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! - [`manticore_netlist`] — netlist IR, builder DSL, reference evaluator;
//! - [`manticore_compiler`] — the static-BSP compiler (Fig. 4 pipeline);
//! - [`manticore_machine`] — cycle-accurate grid model (the FPGA stand-in);
//! - [`manticore_refsim`] — Verilator-analog baseline (serial + macro-task
//!   parallel) and the §7.1 scaling models;
//! - [`manticore_workloads`] — the nine evaluation benchmarks;
//! - [`manticore_isa`] / [`manticore_bits`] — the ISA and bit-vector
//!   foundations.

pub use manticore_bits as bits;
pub use manticore_compiler as compiler;
pub use manticore_isa as isa;
pub use manticore_machine as machine;
pub use manticore_netlist as netlist;
pub use manticore_refsim as refsim;
pub use manticore_util as util;
pub use manticore_workloads as workloads;

pub mod fleet;
pub mod sim;

/// One-stop imports for typical use.
pub mod prelude {
    pub use manticore_bits::Bits;
    pub use manticore_compiler::{compile, CompileOptions, PartitionStrategy};
    pub use manticore_isa::{CoreId, MachineConfig, Reg};
    pub use manticore_machine::{
        Checkpoint, CompiledProgram, CoverageMap, ExecMode, GangMachine, Interrupt, Machine,
        MachineError, ReplayEngine, RunOutcome, MAX_LANES,
    };
    pub use manticore_netlist::{eval::Evaluator, NetlistBuilder};
    pub use manticore_util::CancelToken;

    pub use crate::fleet::{
        BatchPolicy, FaultKind, FaultPlan, FaultPoint, Fleet, FleetJob, FleetRun, FleetSim,
        JobOutcome, JobOutput, SimJob,
    };
    pub use crate::sim::{Simulator, TapeSim};
    pub use crate::ManticoreSim;
}

use manticore_bits::Bits;
use manticore_compiler::{compile, CompileError, CompileOptions, CompileOutput};
use manticore_isa::MachineConfig;
use manticore_machine::{ExecMode, Machine, MachineError, ReplayEngine, RunOutcome};
use manticore_netlist::Netlist;
use manticore_refsim::TapeError;

/// Errors from the high-level simulation flow.
#[derive(Debug)]
pub enum SimError {
    /// Compilation failed.
    Compile(CompileError),
    /// The machine rejected the binary or hit a runtime violation.
    Machine(MachineError),
    /// The Verilator-analog tape could not be built for this design.
    Tape(TapeError),
    /// A testbench assertion (`expect_true`) failed.
    Assert(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Compile(e) => write!(f, "compile: {e}"),
            SimError::Machine(e) => write!(f, "machine: {e}"),
            SimError::Tape(e) => write!(f, "tape: {e}"),
            SimError::Assert(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CompileError> for SimError {
    fn from(e: CompileError) -> Self {
        SimError::Compile(e)
    }
}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> Self {
        SimError::Machine(e)
    }
}

/// A compiled design loaded on the Manticore machine model — the
/// "compile it, run it, read the state back" flow of the paper's runtime.
#[derive(Debug)]
pub struct ManticoreSim {
    machine: Machine,
    /// Shared so several machines (e.g. a serial and a parallel backend)
    /// can run one compiled design without recompiling.
    output: std::sync::Arc<CompileOutput>,
    displays: Vec<String>,
    wall_seconds: f64,
}

impl ManticoreSim {
    /// Compiles `netlist` with default options for `config` and boots a
    /// machine.
    ///
    /// # Errors
    ///
    /// Compilation or load failure.
    pub fn compile(netlist: &Netlist, config: MachineConfig) -> Result<Self, SimError> {
        Self::compile_with(
            netlist,
            &CompileOptions {
                config,
                ..Default::default()
            },
        )
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Compilation or load failure.
    pub fn compile_with(netlist: &Netlist, options: &CompileOptions) -> Result<Self, SimError> {
        let output = compile(netlist, options)?;
        Self::from_output(std::sync::Arc::new(output), options.config.clone())
    }

    /// Boots a machine from an already-compiled design. Lets several
    /// simulators (e.g. one per [`ExecMode`]) share one compilation.
    ///
    /// # Errors
    ///
    /// Load failure (binary does not fit `config`).
    pub fn from_output(
        output: std::sync::Arc<CompileOutput>,
        config: MachineConfig,
    ) -> Result<Self, SimError> {
        let machine = Machine::load(config, &output.binary)?;
        Ok(ManticoreSim {
            machine,
            output,
            displays: Vec::new(),
            wall_seconds: 0.0,
        })
    }

    /// Boots a fresh run of an already-frozen machine program — the
    /// compile-once / run-many path: every call shares `program`'s replay
    /// tape and micro-op streams instead of rebuilding them.
    pub fn from_program(
        program: std::sync::Arc<manticore_machine::CompiledProgram>,
        output: std::sync::Arc<CompileOutput>,
    ) -> Self {
        ManticoreSim {
            machine: Machine::from_program(program),
            output,
            displays: Vec::new(),
            wall_seconds: 0.0,
        }
    }

    /// Wraps a machine that already ran elsewhere (a fleet worker),
    /// seeding the display history it produced there.
    pub(crate) fn from_existing(
        machine: Machine,
        output: std::sync::Arc<CompileOutput>,
        displays: Vec<String>,
    ) -> Self {
        ManticoreSim {
            machine,
            output,
            displays,
            wall_seconds: 0.0,
        }
    }

    /// Selects the machine's execution engine (serial, or sharded BSP).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.machine.set_exec_mode(mode);
    }

    /// Enables or disables the machine's validate-once / replay-many fast
    /// path (on by default; bit-identical either way).
    pub fn set_replay(&mut self, enabled: bool) {
        self.machine.set_replay(enabled);
    }

    /// Selects the machine's replay lowering: the pre-decoded tape or the
    /// fused micro-op stream (default; bit-identical either way).
    pub fn set_replay_engine(&mut self, engine: ReplayEngine) {
        self.machine.set_replay_engine(engine);
    }

    /// Selects strict or permissive hazard checking — the solo mirror of
    /// the fleet job knob ([`crate::fleet::FleetJob::strict_hazards`]).
    pub fn set_strict_hazards(&mut self, strict: bool) {
        self.machine.set_strict_hazards(strict);
    }

    /// Runs up to `max_vcycles` RTL cycles.
    ///
    /// # Errors
    ///
    /// Assertion failures and determinism violations.
    pub fn run(&mut self, max_vcycles: u64) -> Result<RunOutcome, SimError> {
        let start = std::time::Instant::now();
        let result = self.machine.run_vcycles(max_vcycles);
        self.wall_seconds += start.elapsed().as_secs_f64();
        match result {
            Ok(outcome) => {
                self.displays.extend(outcome.displays.iter().cloned());
                Ok(outcome)
            }
            Err(e) => {
                // Keep displays() consistent across backends: output that
                // fired before the failure is still observable (and does
                // not leak into a later run).
                self.displays.extend(self.machine.drain_pending_displays());
                Err(e.into())
            }
        }
    }

    /// All `$display` output produced so far, in order.
    pub fn all_displays(&self) -> &[String] {
        &self.displays
    }

    /// Host wall-clock seconds spent inside [`ManticoreSim::run`].
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }

    /// Reads an RTL register (by its index in the *optimized* netlist,
    /// [`ManticoreSim::netlist`]) back from the machine's register files.
    pub fn read_rtl_reg(&self, index: usize) -> Bits {
        let reg = &self.output.optimized.registers()[index];
        let loc = &self.output.metadata.reg_locations[index];
        let words: Vec<u16> = loc
            .words
            .iter()
            .map(|&(core, mreg)| self.machine.read_reg(core, mreg))
            .collect();
        Bits::from_words16(&words, reg.width)
    }

    /// Looks up an RTL register by name and reads it back.
    pub fn read_rtl_reg_by_name(&self, name: &str) -> Option<Bits> {
        rtl_reg_of(&self.machine, &self.output, name)
    }

    /// Overwrites RTL register `name` with `value` (truncated to the
    /// register's width), writing every machine register word it was
    /// placed into — how a run plants its input vector before the first
    /// Vcycle. Returns `false` if the optimized design has no such
    /// register.
    pub fn write_rtl_reg_by_name(&mut self, name: &str, value: u64) -> bool {
        let Some(words) = rtl_reg_words(&self.output, name, value) else {
            return false;
        };
        for (core, mreg, word) in words {
            self.machine.poke_reg(core, mreg, word);
        }
        true
    }

    /// The optimized netlist the machine is executing (registers may have
    /// been renumbered or removed relative to the input design).
    pub fn netlist(&self) -> &Netlist {
        &self.output.optimized
    }

    /// Compiler output: binary, report, metadata.
    pub fn compile_output(&self) -> &CompileOutput {
        &self.output
    }

    /// The underlying machine (counters, cache stats, raw state).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Snapshots the simulation at its current Vcycle boundary — the
    /// netlist-level face of [`Machine::checkpoint`]. Restore it here
    /// ([`ManticoreSim::restore`]) or explode it into a gang of divergent
    /// children (`Checkpoint::fork`).
    pub fn checkpoint(&self) -> manticore_machine::Checkpoint {
        self.machine.checkpoint()
    }

    /// Rewinds the simulation to a previously captured snapshot, engine
    /// knobs included.
    ///
    /// # Errors
    ///
    /// [`manticore_machine::MachineError::CheckpointMismatch`] (as
    /// [`SimError::Machine`]) when the snapshot belongs to a different
    /// compilation; the simulation is left untouched in that case.
    pub fn restore(&mut self, cp: &manticore_machine::Checkpoint) -> Result<(), SimError> {
        self.machine.restore(cp).map_err(SimError::from)
    }

    /// Achieved simulation rate in kHz at the configured clock: the
    /// paper's headline metric, `clock / VCPL`.
    pub fn simulation_rate_khz(&self) -> f64 {
        self.machine
            .config()
            .simulation_rate_khz(self.machine.vcycle_len())
    }
}

/// Reads RTL register `name` back through `output`'s placement metadata,
/// with the machine-register reads supplied by `read` — the one read-side
/// resolver, shared by [`ManticoreSim::read_rtl_reg_by_name`], the fleet
/// backend, the gang backend (whose lanes are not `Machine`s), and any
/// service that holds a finished machine plus the compilation it ran.
/// Returns `None` if the optimized design has no register named `name`.
///
/// ```
/// # use manticore::prelude::*;
/// # let mut b = NetlistBuilder::new("c");
/// # let r = b.reg("count", 16, 0);
/// # let one = b.lit(1, 16);
/// # let next = b.add(r.q(), one);
/// # b.set_next(r, next);
/// # b.output("count", r.q());
/// # let n = b.finish_build().unwrap();
/// # let mut sim = ManticoreSim::compile(&n, MachineConfig::with_grid(2, 2)).unwrap();
/// # sim.run(3).unwrap();
/// # let (machine, output) = (sim.machine(), sim.compile_output());
/// let bits = manticore::rtl_reg_read(output, "count", |core, reg| {
///     machine.read_reg(core, reg)
/// });
/// assert_eq!(bits.unwrap().to_u64(), 3);
/// ```
pub fn rtl_reg_read(
    output: &CompileOutput,
    name: &str,
    read: impl Fn(manticore_isa::CoreId, manticore_isa::Reg) -> u16,
) -> Option<Bits> {
    let idx = output
        .optimized
        .registers()
        .iter()
        .position(|r| r.name == name)?;
    let reg = &output.optimized.registers()[idx];
    let words: Vec<u16> = output.metadata.reg_locations[idx]
        .words
        .iter()
        .map(|&(core, mreg)| read(core, mreg))
        .collect();
    Some(Bits::from_words16(&words, reg.width))
}

/// Reads RTL register `name` back out of `machine` — the backend-agnostic
/// form of [`ManticoreSim::read_rtl_reg_by_name`]. `None` if the
/// optimized design has no register named `name`.
pub fn rtl_reg_of(machine: &Machine, output: &CompileOutput, name: &str) -> Option<Bits> {
    rtl_reg_read(output, name, |core, mreg| machine.read_reg(core, mreg))
}

/// Splits `value` into the per-word machine register writes that plant it
/// into RTL register `name`: LSW first, each word masked to the bits of
/// the register it actually holds (so out-of-width bits are truncated,
/// not injected into the datapath), and words beyond `value`'s 64 bits
/// cleared. `None` if the optimized design has no such register. The one
/// write-side resolver, shared by [`ManticoreSim::write_rtl_reg_by_name`],
/// the fleet job input vectors, and any service that builds
/// machine-level pokes from named RTL registers.
pub fn rtl_reg_words(
    output: &CompileOutput,
    name: &str,
    value: u64,
) -> Option<Vec<(manticore_isa::CoreId, manticore_isa::Reg, u16)>> {
    let idx = output
        .optimized
        .registers()
        .iter()
        .position(|r| r.name == name)?;
    let reg = &output.optimized.registers()[idx];
    Some(
        output.metadata.reg_locations[idx]
            .words
            .iter()
            .enumerate()
            .map(|(w, &(core, mreg))| {
                let lo = 16 * w;
                // A register wider than 64 bits has more words than the
                // u64 payload; the high words are zeroed, not a shift UB.
                let word = if lo < 64 { (value >> lo) as u16 } else { 0 };
                let bits = reg.width.saturating_sub(lo).min(16);
                let mask = if bits >= 16 {
                    0xffff
                } else {
                    (1u16 << bits) - 1
                };
                (core, mreg, word & mask)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use manticore_netlist::NetlistBuilder;

    #[test]
    fn facade_counter_flow() {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg("count", 16, 0);
        let one = b.lit(1, 16);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        b.output("count", r.q());
        let n = b.finish_build().unwrap();
        let mut sim = ManticoreSim::compile(&n, MachineConfig::with_grid(2, 2)).unwrap();
        sim.run(7).unwrap();
        assert_eq!(sim.read_rtl_reg_by_name("count").unwrap().to_u64(), 7);
        assert!(sim.simulation_rate_khz() > 0.0);
    }

    #[test]
    fn write_rtl_reg_masks_to_width_and_handles_wide_registers() {
        // A 40-bit register (3 machine words, top word holds 8 bits) and
        // an 80-bit register (5 words — more than a u64 payload covers).
        let mut b = NetlistBuilder::new("wide");
        let r40 = b.reg("r40", 40, 0);
        b.set_next(r40, r40.q());
        b.output("r40", r40.q());
        let r80 = b.reg("r80", 80, 0);
        b.set_next(r80, r80.q());
        b.output("r80", r80.q());
        let n = b.finish_build().unwrap();
        let mut sim = ManticoreSim::compile(&n, MachineConfig::with_grid(2, 2)).unwrap();

        // Out-of-width bits are truncated, not injected into the state.
        assert!(sim.write_rtl_reg_by_name("r40", 0x1FF_FFFF_FFFF));
        assert_eq!(
            sim.read_rtl_reg_by_name("r40").unwrap().to_u64(),
            0xFF_FFFF_FFFF
        );

        // Words beyond the 64-bit payload are cleared (no shift overflow).
        assert!(sim.write_rtl_reg_by_name("r80", u64::MAX));
        let r80v = sim.read_rtl_reg_by_name("r80").unwrap();
        assert_eq!(r80v.to_u128(), u64::MAX as u128, "high word stays 0");

        assert!(!sim.write_rtl_reg_by_name("nope", 1));
    }

    #[test]
    fn facade_errors_are_typed() {
        let mut b = NetlistBuilder::new("open");
        let i = b.input("x", 8);
        let r = b.reg("r", 8, 0);
        b.set_next(r, i);
        let n = b.finish_build().unwrap();
        match ManticoreSim::compile(&n, MachineConfig::with_grid(1, 1)) {
            Err(SimError::Compile(_)) => {}
            other => panic!("expected compile error, got {other:?}"),
        }
    }
}
