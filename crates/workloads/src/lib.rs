//! The nine RTL benchmark workloads of the Manticore evaluation (§7.5),
//! as netlist generators.
//!
//! Each is a structurally-faithful, scaled analog of the paper's benchmark,
//! wrapped in a "simple, assertion-based test driver": closed (no primary
//! inputs — stimulus comes from LFSRs and ROMs), self-checking
//! (`expect_true` invariants), terminating (`$finish` after a programmable
//! number of iterations), and sized so the state fits Manticore's
//! scratchpads, as the paper requires. See DESIGN.md for the substitution
//! notes (e.g. fixed-point in place of floating-point for `cgra`).
//!
//! The workloads span the evaluation's parallelism spectrum:
//!
//! | name  | analog of | profile |
//! |-------|-----------|---------|
//! | `vta` | ML accelerator | largest step, buffers + GEMM FSMs |
//! | `mc`  | Monte-Carlo pricer | embarrassingly parallel lanes |
//! | `noc` | 4×4 torus w/ VCs | control-heavy muxing |
//! | `mm`  | 16×16 matmul | memory + MAC FSM |
//! | `rv32r` | 16 CPUs on a ring | replicated cores, ring traffic |
//! | `cgra` | 64-PE reconfigurable array | medium, spatially regular |
//! | `bc`  | bitcoin (SHA-256) miner | deep wide logic, no memory |
//! | `blur`| 3×3 stencil | streaming line buffers |
//! | `jpeg`| Huffman-decode pipeline | serial dependence (Amdahl case) |

mod bc;
mod blur;
mod cgra;
mod jpeg;
mod mc;
mod mm;
mod noc;
mod rv32r;
mod soc;
mod util;
mod vta;

use manticore_netlist::Netlist;

pub use bc::{bc, bc_sized};
pub use blur::{blur, blur_sized};
pub use cgra::{cgra, cgra_sized};
pub use jpeg::{jpeg, jpeg_sized};
pub use mc::{mc, mc_sized};
pub use mm::{mm, mm_sized};
pub use noc::{noc, noc_sized};
pub use rv32r::{rv32r, rv32r_sized};
pub use soc::{soc, soc_sized};
pub use vta::{vta, vta_sized};

/// A benchmark workload: a closed, self-checking netlist.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (the paper's benchmark id).
    pub name: &'static str,
    /// The design plus test driver.
    pub netlist: Netlist,
    /// Cycles a quick verification run should simulate.
    pub test_cycles: u64,
    /// Cycles a benchmark run should simulate (scaled-down analog of the
    /// paper's millions).
    pub bench_cycles: u64,
}

/// All nine workloads at their default sizes, ordered by descending step
/// size (the Table 3 ordering).
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "vta",
            netlist: vta(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "mc",
            netlist: mc(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "noc",
            netlist: noc(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "mm",
            netlist: mm(),
            test_cycles: 600,
            bench_cycles: 4_200,
        },
        Workload {
            name: "rv32r",
            netlist: rv32r(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "cgra",
            netlist: cgra(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "bc",
            netlist: bc(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "blur",
            netlist: blur(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
        Workload {
            name: "jpeg",
            netlist: jpeg(),
            test_cycles: 300,
            bench_cycles: 2_000,
        },
    ]
}

/// Looks up a workload by name. Also resolves `soc`, the 16×16-grid
/// compile-stress workload, which is not part of the nine-benchmark
/// evaluation suite in [`all`].
pub fn by_name(name: &str) -> Option<Workload> {
    if name == "soc" {
        return Some(Workload {
            name: "soc",
            netlist: soc(),
            test_cycles: 300,
            bench_cycles: 2_000,
        });
    }
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests;
