//! `rv32r` — sixteen small in-order RISC cores communicating over a ring.
//!
//! The paper instantiates 16 `riscv-mini` RV32I cores on a ring network.
//! Building a full RV32I in the netlist DSL would dominate the suite, so
//! each core here is "MiniRV": a 16-bit, ROM-programmed, 4-register
//! in-order core with an ALU and ring send/receive ops — preserving the
//! profile that matters (replicated CPU pipelines with low-bandwidth ring
//! traffic). See DESIGN.md substitutions.
//!
//! MiniRV instruction word (16 bits): `op[15:14] rd[13:12] rs[11:10]
//! imm[9:0]`; ops: 0 `addi rd, rs, imm`; 1 `xori rd, rs, imm`;
//! 2 `ring.send rs` (drive this core's ring register); 3 `ring.add rd, rs`
//! (rd = rs + predecessor's ring register).

use manticore_bits::Bits;
use manticore_netlist::{Netlist, NetlistBuilder};

use crate::util::finish_after;

/// Default: 16 cores, 8-instruction ROMs.
pub fn rv32r() -> Netlist {
    rv32r_sized(16, 2000)
}

/// `ncores` MiniRV cores on a unidirectional ring.
pub fn rv32r_sized(ncores: usize, cycles: u64) -> Netlist {
    let mut b = NetlistBuilder::new("rv32r");
    const ROM: usize = 8;

    let encode = |op: u16, rd: u16, rs: u16, imm: u16| -> Bits {
        Bits::from_u64(
            (((op & 3) << 14) | ((rd & 3) << 12) | ((rs & 3) << 10) | (imm & 0x3ff)) as u64,
            16,
        )
    };

    // Ring registers first: registers permit forward references, so core i
    // can read core (i-1)'s ring output before that core is built.
    let ring_regs: Vec<_> = (0..ncores)
        .map(|c| b.reg(format!("ring{c}"), 16, (c as u64) << 4))
        .collect();

    let mut alive_bits = Vec::new();
    for core in 0..ncores {
        let rom_words: Vec<Bits> = vec![
            encode(0, 0, 0, (core as u16 * 37 + 11) & 0x3ff), // addi r0, r0, k
            encode(1, 1, 0, 0x155),                           // xori r1, r0, 0x155
            encode(0, 2, 1, (core as u16 * 13 + 5) & 0x3ff),  // addi r2, r1, k2
            encode(2, 0, 2, 0),                               // ring.send r2
            encode(3, 3, 0, 0),                               // ring.add r3, r0
            encode(1, 0, 3, 0x2aa),                           // xori r0, r3, 0x2aa
            encode(0, 1, 2, 1),                               // addi r1, r2, 1
            encode(2, 0, 1, 0),                               // ring.send r1
        ];
        let rom = b.memory_init(format!("rom{core}"), ROM, 16, rom_words);

        // Program counter (wraps the 8-entry ROM).
        let pc = b.reg(format!("pc{core}"), 3, 0);
        let one3 = b.lit(1, 3);
        let pc_next = b.add(pc.q(), one3);
        b.set_next(pc, pc_next);

        // Fetch + decode.
        let instr = b.mem_read(rom, pc.q());
        let op = b.slice(instr, 14, 2);
        let rd = b.slice(instr, 12, 2);
        let rs = b.slice(instr, 10, 2);
        let imm = b.slice(instr, 0, 10);
        let imm16 = b.zext(imm, 16);

        // 4-entry register file: mux read, decoded write.
        let regs: Vec<_> = (0..4)
            .map(|i| b.reg(format!("x{core}_{i}"), 16, (core * 3 + i + 1) as u64))
            .collect();
        let mut rs_val = regs[0].q();
        for (i, r) in regs.iter().enumerate().skip(1) {
            let i_c = b.lit(i as u64, 2);
            let sel = b.eq(rs, i_c);
            rs_val = b.mux(sel, r.q(), rs_val);
        }

        // Execute.
        let ring_in = ring_regs[(core + ncores - 1) % ncores].q();
        let add_res = b.add(rs_val, imm16);
        let xor_res = b.xor(rs_val, imm16);
        let ring_res = b.add(rs_val, ring_in);
        let c0 = b.lit(0, 2);
        let c1 = b.lit(1, 2);
        let c2 = b.lit(2, 2);
        let is_add = b.eq(op, c0);
        let is_xor = b.eq(op, c1);
        let is_send = b.eq(op, c2);
        let t = b.mux(is_xor, xor_res, ring_res);
        let wb_val = b.mux(is_add, add_res, t);
        let not_send = b.not(is_send);
        for (i, r) in regs.iter().enumerate() {
            let i_c = b.lit(i as u64, 2);
            let is_rd = b.eq(rd, i_c);
            let en = b.and(not_send, is_rd);
            let next = b.mux(en, wb_val, r.q());
            b.set_next(*r, next);
        }

        // Ring output: updated on ring.send, else held.
        let ring_next = b.mux(is_send, rs_val, ring_regs[core].q());
        b.set_next(ring_regs[core], ring_next);

        let z = b.lit(0, 3);
        let pc_ok = b.uge(pc.q(), z); // trivially true: pc in range
        alive_bits.push(pc_ok);
    }

    // Driver: checksum of ring traffic, invariant, finish.
    let mut fold = ring_regs[0].q();
    for r in &ring_regs[1..] {
        fold = b.xor(fold, r.q());
    }
    let csum = b.reg("ring_csum", 16, 0);
    let mixed = b.add(csum.q(), fold);
    b.set_next(csum, mixed);
    b.output("ring_csum", csum.q());

    let mut ok = alive_bits[0];
    for &a in &alive_bits[1..] {
        ok = b.and(ok, a);
    }
    b.expect_true(ok, "a MiniRV program counter escaped its ROM");

    finish_after(&mut b, cycles);
    b.finish_build()
        .expect("rv32r netlist is structurally valid")
}
