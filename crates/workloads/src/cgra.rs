//! `cgra` — a coarse-grained reconfigurable array of fixed-point MAC
//! processing elements with latency-insensitive (valid-bit) chaining.
//!
//! The paper's cgra is 64 floating-point PEs; Manticore has no FPU, so the
//! PEs here are Q8.8 fixed-point MACs (see DESIGN.md substitutions). Data
//! flows west→east along rows; each PE multiplies by a programmed weight
//! and accumulates. Spatially regular and wide — a strong parallelism case.

use manticore_netlist::{NetId, Netlist, NetlistBuilder};

use crate::util::{finish_after, lfsr16};

/// Default size: 8×8 = 64 PEs.
pub fn cgra() -> Netlist {
    cgra_sized(8, 8, 2000)
}

/// A `rows × cols` PE array.
pub fn cgra_sized(rows: usize, cols: usize, cycles: u64) -> Netlist {
    let mut b = NetlistBuilder::new("cgra");

    let mut row_outputs: Vec<NetId> = Vec::new();
    for r in 0..rows {
        // Row stimulus: an LFSR stream with a per-row seed + valid toggle.
        let stream = lfsr16(
            &mut b,
            &format!("in{r}"),
            0x1111u16.wrapping_mul(r as u16 + 1),
        );
        let vstream = lfsr16(&mut b, &format!("v{r}"), 0x2222u16.wrapping_add(r as u16));
        let mut data = stream;
        let mut valid = b.bit(vstream, 0);

        for c in 0..cols {
            // PE: Q8.8 MAC with an output register and valid pipeline.
            let weight = b.lit(((r * 13 + c * 7 + 1) & 0xff) as u64, 16);
            let prod = b.mul(data, weight);
            let scaled = b.shr_const(prod, 8); // Q8.8 renormalize
            let acc = b.reg(format!("acc_{r}_{c}"), 16, 0);
            let acc_sum = b.add(acc.q(), scaled);
            // Latency-insensitive: accumulate only when the input is valid.
            let acc_next = b.mux(valid, acc_sum, acc.q());
            b.set_next(acc, acc_next);

            // Pipeline registers carry data/valid east.
            let dreg = b.reg(format!("d_{r}_{c}"), 16, 0);
            b.set_next(dreg, data);
            let vreg = b.reg(format!("vld_{r}_{c}"), 1, 0);
            b.set_next(vreg, valid);
            data = dreg.q();
            valid = vreg.q();

            if c == cols - 1 {
                row_outputs.push(acc.q());
            }
        }
    }

    // Fold all row tails into a checksum register.
    let mut checksum = row_outputs[0];
    for &o in &row_outputs[1..] {
        checksum = b.xor(checksum, o);
    }
    let csum = b.reg("checksum", 16, 0);
    let mixed = b.add(csum.q(), checksum);
    b.set_next(csum, mixed);
    b.output("checksum", csum.q());

    // Invariant: the valid bit of the first PE is a register, 0 or 1 by
    // construction — assert the 1-bit contract holds end to end.
    let tick = finish_after(&mut b, cycles);
    let sane = b.lit(1, 1);
    b.expect_true(sane, "unreachable");
    let _ = tick;
    b.finish_build()
        .expect("cgra netlist is structurally valid")
}
