//! `mc` — Monte-Carlo stock-option price evolution with fixed-point
//! arithmetic (the paper's FPGA financial engine, Tian & Benkrid FPT'08).
//!
//! Many independent simulation lanes, each with its own xorshift RNG and a
//! Q8.8 geometric-walk price update — the suite's embarrassingly-parallel
//! extreme (Fig. 7 shows mc scaling the furthest).

use manticore_netlist::{Netlist, NetlistBuilder};

use crate::util::{finish_after, xorshift32};

/// Default: 96 lanes.
pub fn mc() -> Netlist {
    mc_sized(96, 2000)
}

/// `lanes` independent price walkers.
pub fn mc_sized(lanes: usize, cycles: u64) -> Netlist {
    let mut b = NetlistBuilder::new("mc");

    let mut finals = Vec::with_capacity(lanes);
    let mut rng0 = None;
    for lane in 0..lanes {
        // Per-lane RNG.
        let rng = xorshift32(
            &mut b,
            &format!("lane{lane}"),
            0x9e37 + lane as u32 * 0x79b9,
        );
        if lane == 0 {
            rng0 = Some(rng);
        }
        // Gaussian-ish noise: sum of four 8-bit slices (CLT approximation),
        // centred at 2*255.
        let n0 = b.slice(rng, 0, 8);
        let n1 = b.slice(rng, 8, 8);
        let n2 = b.slice(rng, 16, 8);
        let n3 = b.slice(rng, 24, 8);
        let mut noise = b.zext(n0, 16);
        for n in [n1, n2, n3] {
            let e = b.zext(n, 16);
            noise = b.add(noise, e);
        }
        let center = b.lit(510, 16);
        let centred = b.sub(noise, center); // roughly symmetric around 0

        // Price state in Q8.8 (256 = 1.0).
        let price = b.reg(format!("price{lane}"), 16, 256);
        // drift: price * mu (mu = 1/256)
        let drift = b.shr_const(price.q(), 8);
        // diffusion: price * noise, scaled by sigma = 2^-12
        let vol = b.mul(price.q(), centred);
        let diff_scaled = b.shr_const(vol, 12);
        let up = b.add(price.q(), drift);
        let next_price = b.add(up, diff_scaled);
        b.set_next(price, next_price);
        finals.push(price.q());
    }

    // Payoff accumulation as a two-stage pipelined reduction tree (as the
    // FPGA engine would build it): groups of 8 lanes reduce into partial
    // registers, which a second stage sums — so each group is an
    // independently schedulable cone.
    let strike = b.lit(200, 16);
    let mut partials = Vec::new();
    for (g, chunk) in finals.chunks(8).enumerate() {
        let mut group_sum = b.lit(0, 16);
        for &p in chunk {
            let above = b.uge(p, strike);
            let diff = b.sub(p, strike);
            let zero = b.lit(0, 16);
            let payoff = b.mux(above, diff, zero);
            group_sum = b.add(group_sum, payoff);
        }
        let pr = b.reg(format!("partial{g}"), 16, 0);
        b.set_next(pr, group_sum);
        partials.push(pr.q());
    }
    let mut payoff_sum = b.lit(0, 16);
    for &p in &partials {
        payoff_sum = b.add(payoff_sum, p);
    }
    let acc = b.reg("payoff_acc", 16, 0);
    let acc_next = b.add(acc.q(), payoff_sum);
    b.set_next(acc, acc_next);
    b.output("payoff_acc", acc.q());

    // Invariant: a non-zero-seeded xorshift can never reach zero.
    let rng0 = rng0.expect("at least one lane");
    let z32 = b.lit(0, 32);
    let rng_live = b.ne(rng0, z32);
    b.expect_true(rng_live, "lane-0 RNG collapsed to zero");
    b.output("lane0", finals[0]);

    finish_after(&mut b, cycles);
    b.finish_build().expect("mc netlist is structurally valid")
}
