//! `bc` — bitcoin miner analog: a SHA-256-style compression pipeline
//! searching nonces against a difficulty target.
//!
//! Structure mirrors the open-source FPGA miner the paper uses: deep, wide
//! bitwise logic (rotations, `Ch`/`Maj`, carry-heavy 32-bit adds) with
//! almost no memory — the custom-function synthesis showcase. Each cycle
//! advances two SHA rounds and one nonce; a match fires `$display`.

use manticore_netlist::{NetId, Netlist, NetlistBuilder};

use crate::util::finish_after;

/// SHA-256 round constants (first 16).
const K: [u32; 16] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
];

/// SHA-256 initial hash values.
const H: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

fn big_sigma0(b: &mut NetlistBuilder, x: NetId) -> NetId {
    let r2 = b.rotr_const(x, 2);
    let r13 = b.rotr_const(x, 13);
    let r22 = b.rotr_const(x, 22);
    let t = b.xor(r2, r13);
    b.xor(t, r22)
}

fn big_sigma1(b: &mut NetlistBuilder, x: NetId) -> NetId {
    let r6 = b.rotr_const(x, 6);
    let r11 = b.rotr_const(x, 11);
    let r25 = b.rotr_const(x, 25);
    let t = b.xor(r6, r11);
    b.xor(t, r25)
}

fn ch(b: &mut NetlistBuilder, x: NetId, y: NetId, z: NetId) -> NetId {
    // (x & y) ^ (~x & z)
    let xy = b.and(x, y);
    let nx = b.not(x);
    let nxz = b.and(nx, z);
    b.xor(xy, nxz)
}

fn maj(b: &mut NetlistBuilder, x: NetId, y: NetId, z: NetId) -> NetId {
    let xy = b.and(x, y);
    let xz = b.and(x, z);
    let yz = b.and(y, z);
    let t = b.xor(xy, xz);
    b.xor(t, yz)
}

/// Builds the default-size miner (6 pipelines, 2 rounds/cycle) — real
/// miners replicate the hash pipeline to search disjoint nonce ranges.
pub fn bc() -> Netlist {
    bc_sized(6, 2, 2000)
}

/// Builds a miner with `pipes` parallel hash pipelines, each advancing
/// `rounds_per_cycle` SHA rounds per clock, finishing after `cycles`.
pub fn bc_sized(pipes: usize, rounds_per_cycle: usize, cycles: u64) -> Netlist {
    let mut b = NetlistBuilder::new("bc");
    let mut hash_heads = Vec::new();
    for pipe in 0..pipes {
        let head = bc_pipe(&mut b, pipe, rounds_per_cycle);
        hash_heads.push(head);
    }
    // Cross-pipe checksum keeps every pipeline observable.
    let mut fold = hash_heads[0];
    for &h in &hash_heads[1..] {
        fold = b.xor(fold, h);
    }
    let csum = b.reg("csum", 32, 0);
    let mixed = b.add(csum.q(), fold);
    b.set_next(csum, mixed);
    b.output("csum", csum.q());
    finish_after(&mut b, cycles);
    b.finish_build().expect("bc netlist is structurally valid")
}

/// One hash pipeline; returns its `a` register net.
fn bc_pipe(b: &mut NetlistBuilder, pipe: usize, rounds_per_cycle: usize) -> NetId {
    // Working state a..h.
    let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let regs: Vec<_> = (0..8)
        .map(|i| {
            b.reg(
                format!("{}{}", names[i], pipe),
                32,
                (H[i] as u64).wrapping_add(pipe as u64 * 0x9e3779b9) & 0xffff_ffff,
            )
        })
        .collect();
    let mut v: Vec<NetId> = regs.iter().map(|r| r.q()).collect();

    // Nonce counter (disjoint range per pipe), mixed into the schedule.
    let nonce = b.reg(format!("nonce{pipe}"), 32, (pipe as u64) << 28);
    let one = b.lit(1, 32);
    let nonce_next = b.add(nonce.q(), one);
    b.set_next(nonce, nonce_next);

    // Round counter selects the constant.
    let round = b.reg(format!("round{pipe}"), 4, 0);
    let r1 = b.lit(1, 4);
    let round_next = b.add(round.q(), r1);
    b.set_next(round, round_next);

    // K constant mux tree over the round counter.
    let mut kmux = b.lit(K[0] as u64, 32);
    for (i, &k) in K.iter().enumerate().skip(1) {
        let i_c = b.lit(i as u64, 4);
        let is_i = b.eq(round.q(), i_c);
        let k_c = b.lit(k as u64, 32);
        kmux = b.mux(is_i, k_c, kmux);
    }

    for round_i in 0..rounds_per_cycle {
        // w: message word derived from the nonce (schedule analog).
        let rot = b.rotr_const(nonce.q(), (round_i * 7 + 3) % 31 + 1);
        let w = b.xor(rot, v[7]);

        let s1 = big_sigma1(b, v[4]);
        let chv = ch(b, v[4], v[5], v[6]);
        let t1a = b.add(v[7], s1);
        let t1b = b.add(t1a, chv);
        let t1c = b.add(t1b, kmux);
        let t1 = b.add(t1c, w);
        let s0 = big_sigma0(b, v[0]);
        let majv = maj(b, v[0], v[1], v[2]);
        let t2 = b.add(s0, majv);

        let new_e = b.add(v[3], t1);
        let new_a = b.add(t1, t2);
        v = vec![new_a, v[0], v[1], v[2], new_e, v[4], v[5], v[6]];
    }
    for (i, r) in regs.iter().enumerate() {
        b.set_next(*r, v[i]);
    }

    // Difficulty check: top 8 bits of `a` must be zero -> "share found".
    let top = b.slice(regs[0].q(), 24, 8);
    let zero8 = b.lit(0, 8);
    let found = b.eq(top, zero8);
    if pipe == 0 {
        b.display(
            found,
            "share found: nonce={} a={}",
            &[nonce.q(), regs[0].q()],
        );
        // Invariant: the round counter must stay < 16 by construction.
        let lim = b.lit(15, 4);
        let in_range = b.ult(round.q(), lim);
        let at_lim = b.eq(round.q(), lim);
        let ok = b.or(in_range, at_lim);
        b.expect_true(ok, "round counter overflow");
    }
    regs[0].q()
}
