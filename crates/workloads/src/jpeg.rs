//! `jpeg` — a pipelined JPEG decoder analog dominated by serial
//! variable-length (Huffman) decoding.
//!
//! The paper's jpeg benchmark is its Amdahl's-law case: "Huffman table
//! lookup is the bottleneck" — a serial chain where each decoded symbol's
//! *length* determines where the next symbol starts, so almost nothing
//! parallelizes. This analog reproduces exactly that: a bit-buffer register
//! feeds a code table; the decoded length shifts the buffer for the next
//! cycle; symbols flow through a small dequant/accumulate tail. It is also
//! deliberately the smallest design of the suite.

use manticore_bits::Bits;
use manticore_netlist::{Netlist, NetlistBuilder};

use crate::util::{finish_after, xorshift32};

/// Default size.
pub fn jpeg() -> Netlist {
    jpeg_sized(2000)
}

/// Builds the decoder; finishes after `cycles`.
pub fn jpeg_sized(cycles: u64) -> Netlist {
    let mut b = NetlistBuilder::new("jpeg");

    // 32-bit bit buffer, refilled from an xorshift "bitstream".
    let bitbuf = b.reg_init("bitbuf", 32, Bits::from_u64(0x9e3779b9, 32));
    let stream = xorshift32(&mut b, "stream", 0xc0ffee);

    // Huffman table: 64 entries indexed by the top 6 bits; each entry is
    // {len[3:0], sym[11:0]} with len in 1..=8.
    let table_words: Vec<Bits> = (0..64u64)
        .map(|i| {
            let len = (i % 7) + 2; // 2..=8
            let sym = (i * 73 + 5) & 0xfff;
            Bits::from_u64((len << 12) | sym, 16)
        })
        .collect();
    let table = b.memory_init("hufftab", 64, 16, table_words);

    // Serial decode: top 6 bits -> entry -> len -> shift.
    let top6 = b.slice(bitbuf.q(), 26, 6);
    let entry = b.mem_read(table, top6);
    let len = b.slice(entry, 12, 4);
    let sym = b.slice(entry, 0, 12);

    // Consume `len` bits; refill the bottom from the stream.
    let len32 = b.zext(len, 32);
    let shifted = b.shl(bitbuf.q(), len32);
    // mask of `len` bits for the refill
    let one = b.lit(1, 32);
    let m = b.shl(one, len32);
    let mask = b.sub(m, one);
    let fresh = b.and(stream, mask);
    let refilled = b.or(shifted, fresh);
    b.set_next(bitbuf, refilled);

    // Dequant + accumulate tail (the parallelizable but tiny part).
    let qtab = b.lit(3, 12);
    let deq = b.mul(sym, qtab);
    let acc = b.reg("acc", 16, 0);
    let deq16 = b.zext(deq, 16);
    let acc_next = b.add(acc.q(), deq16);
    b.set_next(acc, acc_next);

    // Pixel output register with a simple level shift.
    let bias = b.lit(128, 16);
    let pixel = b.add(deq16, bias);
    let pix = b.reg("pixel", 16, 0);
    b.set_next(pix, pixel);

    b.output("acc", acc.q());
    b.output("pixel", pix.q());

    // Invariant: table lengths are always 2..=8.
    let two = b.lit(2, 4);
    let nine = b.lit(9, 4);
    let ge2 = b.uge(len, two);
    let lt9 = b.ult(len, nine);
    let ok = b.and(ge2, lt9);
    b.expect_true(ok, "huffman length out of range");

    finish_after(&mut b, cycles);
    b.finish_build()
        .expect("jpeg netlist is structurally valid")
}
