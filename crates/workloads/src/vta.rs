//! `vta` — a simplified tensor accelerator: load / compute / store stages
//! over on-chip buffers, GEMM inner loops with a wide spatial unroll.
//!
//! Mirrors the paper's enlarged VTA configuration (blockIn/blockOut raised,
//! buffers shrunk to fit the scratchpads): an input buffer and a weight
//! buffer feed `block` MACs per cycle into an accumulator buffer, with FSM
//! sequencing between stages. The biggest step size of the suite.

use manticore_bits::Bits;
use manticore_netlist::{Netlist, NetlistBuilder};

use crate::util::finish_after;

/// Default size: 16 banks, block of 16, 16-entry accumulator tiles.
pub fn vta() -> Netlist {
    vta_sized(16, 16, 16, 2000)
}

/// A banked ("spatial", as the paper's enlarged configuration) GEMM unit:
/// `banks` independent lanes, each with its own input/weight/accumulator
/// buffers and `block` MACs per cycle over a `tile`-row accumulator.
///
/// # Panics
///
/// Panics unless `block` and `tile` are powers of two.
pub fn vta_sized(banks: usize, block: usize, tile: usize, cycles: u64) -> Netlist {
    assert!(block.is_power_of_two() && tile.is_power_of_two());
    let mut b = NetlistBuilder::new("vta");
    let mut results = Vec::new();
    for bank in 0..banks {
        let r = vta_bank(&mut b, bank, block, tile);
        results.push(r);
    }
    // Cross-bank checksum observed by the driver.
    let mut fold = results[0];
    for &r in &results[1..] {
        fold = b.xor(fold, r);
    }
    let total = b.reg("total", 16, 0);
    let mixed = b.add(total.q(), fold);
    b.set_next(total, mixed);
    b.output("total", total.q());
    let ok = b.lit(1, 1);
    b.expect_true(ok, "unreachable");
    finish_after(&mut b, cycles);
    b.finish_build().expect("vta netlist is structurally valid")
}

/// One GEMM bank; returns its result-register net.
fn vta_bank(
    b: &mut NetlistBuilder,
    bank: usize,
    block: usize,
    tile: usize,
) -> manticore_netlist::NetId {
    let inp_depth = tile * block;

    // Buffers: input activations, weights, accumulators.
    let mut seed = 7u16.wrapping_add(bank as u16 * 131);
    let mut words = |n: usize| -> Vec<Bits> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(31421).wrapping_add(6927);
                Bits::from_u64(seed as u64, 16)
            })
            .collect()
    };
    let inp_init = words(inp_depth);
    let wgt_init = words(block * block);
    let inp = b.memory_init(format!("inp{bank}"), inp_depth, 16, inp_init);
    let wgt = b.memory_init(format!("wgt{bank}"), block * block, 16, wgt_init);
    let acc_buf = b.memory(format!("acc{bank}"), tile, 16);

    let row_w = tile.trailing_zeros() as usize;
    let k_w = block.trailing_zeros() as usize;
    let addr_w = row_w + k_w;

    // FSM: for each output row: `block` MACs/cycle over the k dimension
    // (fully unrolled), so one row per cycle; stage counter walks rows.
    let row = b.reg(format!("row{bank}"), row_w, 0);
    let pass = b.reg(format!("pass{bank}"), 8, 0);

    // Row dot product, fully unrolled over k.
    let mut dot = b.lit(0, 16);
    for kk in 0..block {
        // inp[row*block + kk]
        let row_ext = b.zext(row.q(), addr_w);
        let row_sh = b.shl_const(row_ext, k_w);
        let kk_c = b.lit(kk as u64, addr_w);
        let ia = b.or(row_sh, kk_c);
        let iv = b.mem_read(inp, ia);
        // wgt[kk*block + (row & (block-1))]
        let col = b.slice(row.q(), 0, k_w.min(row_w));
        let col_ext = b.zext(col, 2 * k_w);
        let kk_sh = b.lit((kk * block) as u64, 2 * k_w);
        let wa = b.or(kk_sh, col_ext);
        let wv = b.mem_read(wgt, wa);
        let prod = b.mul(iv, wv);
        let scaled = b.shr_const(prod, 4);
        dot = b.add(dot, scaled);
    }

    // Accumulate into acc[row].
    let acc_rd = b.mem_read(acc_buf, row.q());
    let acc_new = b.add(acc_rd, dot);
    let one1 = b.lit(1, 1);
    b.mem_write(acc_buf, row.q(), acc_new, one1);

    // Row walk; pass counter on wrap.
    let one_r = b.lit(1, row_w);
    let row_next = b.add(row.q(), one_r);
    b.set_next(row, row_next);
    let last = b.lit((tile - 1) as u64, row_w);
    let wrapped = b.eq(row.q(), last);
    let one8 = b.lit(1, 8);
    let pass_inc = b.add(pass.q(), one8);
    let pass_next = b.mux(wrapped, pass_inc, pass.q());
    b.set_next(pass, pass_next);

    // Store stage: on wrap, fold the freshest accumulator into a result
    // register (the "store to DRAM" analog kept on-chip).
    let result = b.reg(format!("result{bank}"), 16, 0);
    let folded = b.xor(result.q(), acc_new);
    let result_next = b.mux(wrapped, folded, result.q());
    b.set_next(result, result_next);
    if bank == 0 {
        b.display(wrapped, "vta pass {} result {}", &[pass.q(), result.q()]);
    }

    result.q()
}
