//! `noc` — a 2D 4×4 unidirectional torus network-on-chip with wormhole-style
//! routers and four virtual channels.
//!
//! Control-heavy: every router arbitrates between through-traffic (+x, +y)
//! and local injection across four VC registers with round-robin selection
//! and dimension-ordered route computation — wide fan-in muxing with little
//! arithmetic, the paper's interconnect benchmark.
//!
//! Flit format (16 bits): `{vc[1:0], dest_x[1:0], dest_y[1:0], payload[8:0],
//! valid[0]}` packed as `valid | payload<<1 | dy<<10 | dx<<12 | vc<<14`.

use manticore_netlist::{NetId, Netlist, NetlistBuilder, RegHandle};

use crate::util::{finish_after, lfsr16};

/// Default 4×4 torus with 4 VCs.
pub fn noc() -> Netlist {
    noc_sized(4, 4, 2000)
}

/// `k × k` torus with `vcs` virtual channels per port.
///
/// # Panics
///
/// Panics unless `k` is a power of two and `vcs >= 1`.
pub fn noc_sized(k: usize, vcs: usize, cycles: u64) -> Netlist {
    assert!(k.is_power_of_two() && vcs >= 1);
    let kw = k.trailing_zeros() as usize; // coordinate width
    let mut b = NetlistBuilder::new("noc");

    // Output registers of each router, per VC, for the +x and +y links.
    // Created first so neighbours can be referenced cyclically.
    let mut xout: Vec<Vec<RegHandle>> = Vec::new();
    let mut yout: Vec<Vec<RegHandle>> = Vec::new();
    for r in 0..k * k {
        xout.push(
            (0..vcs)
                .map(|v| b.reg(format!("xo{r}_{v}"), 16, 0))
                .collect(),
        );
        yout.push(
            (0..vcs)
                .map(|v| b.reg(format!("yo{r}_{v}"), 16, 0))
                .collect(),
        );
    }

    let mut delivered_bits: Vec<NetId> = Vec::new();
    for y in 0..k {
        for x in 0..k {
            let rid = y * k + x;
            let west = ((x + k - 1) % k) + y * k;
            let south = x + ((y + k - 1) % k) * k;

            // Round-robin VC pointer.
            let vcw = vcs.next_power_of_two().trailing_zeros().max(1) as usize;
            let rr = b.reg(format!("rr{rid}"), vcw, 0);
            let one = b.lit(1, vcw);
            let rr_next = b.add(rr.q(), one);
            b.set_next(rr, rr_next);

            // Local injector: occasionally creates a flit to a pseudo-random
            // destination.
            let stim = lfsr16(&mut b, &format!("inj{rid}"), (rid as u16 + 1) * 0x3d9);
            let fire = {
                let low = b.slice(stim, 0, 3);
                let z = b.lit(0, 3);
                b.eq(low, z)
            };
            let dest_x = b.slice(stim, 4, kw);
            let dest_y = b.slice(stim, 4 + kw, kw);
            let payload = b.slice(stim, 8, 8);
            // Build the flit.
            let one1 = b.lit(1, 1);
            let p9 = b.zext(payload, 9);
            let body = b.concat(p9, one1); // {payload, valid}
            let dxy = b.concat(dest_x, dest_y); // {dx, dy}? careful: concat(hi=dest_x? we pass (hi,lo)
            let flit_lo = b.concat(dxy, body);
            let vc_bits = 16 - (10 + 2 * kw);
            let vc_sel = b.slice(stim, 16 - vc_bits, vc_bits);
            let inj_flit = b.concat(vc_sel, flit_lo);

            // Per-VC: arbitrate west-through, south-through, injection.
            for v in 0..vcs {
                let from_w = xout[west][v].q();
                let from_s = yout[south][v].q();
                let wv = b.bit(from_w, 0);
                let sv = b.bit(from_s, 0);

                // Candidate flit: west wins, else south, else injection on
                // the round-robin VC.
                let v_c = b.lit(v as u64, vcw);
                let inj_here_vc = b.eq(rr.q(), v_c);
                let inj_valid = b.and(fire, inj_here_vc);
                let cand1 = b.mux(wv, from_w, from_s);
                let sv_or_wv = b.or(wv, sv);
                let cand = b.mux(sv_or_wv, cand1, inj_flit);
                let cand_valid_pre = b.or(sv_or_wv, inj_valid);
                let cv = b.bit(cand, 0);
                let cand_valid = b.and(cand_valid_pre, cv);

                // Route: compare destination with our coordinates.
                let dx = b.slice(cand, 10 + kw, kw);
                let dy = b.slice(cand, 10, kw);
                let my_x = b.lit(x as u64, kw);
                let my_y = b.lit(y as u64, kw);
                let x_match = b.eq(dx, my_x);
                let y_match = b.eq(dy, my_y);
                let here = b.and(x_match, y_match);
                let go_x = b.not(x_match);

                // Deliver locally: count it.
                let deliver = b.and(cand_valid, here);
                delivered_bits.push(deliver);

                // Forward: to +x if x mismatch, else +y.
                let zero16 = b.lit(0, 16);
                let fwd_x = b.and(cand_valid, go_x);
                let keep_x = b.mux(fwd_x, cand, zero16);
                b.set_next(xout[rid][v], keep_x);
                let not_here = b.not(here);
                let fwd_y_cond = b.and(x_match, not_here);
                let fwd_y = b.and(cand_valid, fwd_y_cond);
                let keep_y = b.mux(fwd_y, cand, zero16);
                b.set_next(yout[rid][v], keep_y);
            }
        }
    }

    // Delivered-flit counter: a pipelined popcount — per-router partial
    // counters reduce into the global counter one cycle later, keeping the
    // statistics logic from serializing the router array.
    let per_router = k * vcs; // delivered bits contributed per router row chunk
    let mut partials = Vec::new();
    for (g, chunk) in delivered_bits.chunks(per_router).enumerate() {
        let mut cnt = b.lit(0, 16);
        for &d in chunk {
            let e = b.zext(d, 16);
            cnt = b.add(cnt, e);
        }
        let pr = b.reg(format!("dcount{g}"), 16, 0);
        b.set_next(pr, cnt);
        partials.push(pr.q());
    }
    let mut pop = b.lit(0, 16);
    for &p in &partials {
        pop = b.add(pop, p);
    }
    let delivered = b.reg("delivered", 16, 0);
    let d_next = b.add(delivered.q(), pop);
    b.set_next(delivered, d_next);
    b.output("delivered", delivered.q());

    // Invariant: per-cycle deliveries bounded by router*vc count.
    let bound = b.lit((k * k * vcs + 1) as u64, 16);
    let ok = b.ult(pop, bound);
    b.expect_true(ok, "impossible delivery count");

    finish_after(&mut b, cycles);
    b.finish_build().expect("noc netlist is structurally valid")
}
