//! Shared building blocks for the workload generators.

use manticore_netlist::{NetId, NetlistBuilder, RegHandle};

/// A 16-bit Galois LFSR (taps 0xB400) — the standard self-stimulus source.
/// Returns the current (pseudo-random, never-zero) value net.
pub fn lfsr16(b: &mut NetlistBuilder, name: &str, seed: u16) -> NetId {
    let seed = if seed == 0 { 0xace1 } else { seed };
    let r = b.reg(format!("{name}_lfsr"), 16, seed as u64);
    let lsb = b.bit(r.q(), 0);
    let shifted = b.shr_const(r.q(), 1);
    let taps = b.lit(0xb400, 16);
    let toggled = b.xor(shifted, taps);
    let next = b.mux(lsb, toggled, shifted);
    b.set_next(r, next);
    r.q()
}

/// A 32-bit xorshift RNG register; returns `(current value, handle)`.
pub fn xorshift32(b: &mut NetlistBuilder, name: &str, seed: u32) -> NetId {
    let seed = if seed == 0 { 0x1234_5678 } else { seed };
    let r = b.reg(format!("{name}_xs"), 32, seed as u64);
    let s1 = b.shl_const(r.q(), 13);
    let x1 = b.xor(r.q(), s1);
    let s2 = b.shr_const(x1, 17);
    let x2 = b.xor(x1, s2);
    let s3 = b.shl_const(x2, 5);
    let x3 = b.xor(x2, s3);
    b.set_next(r, x3);
    r.q()
}

/// A free-running cycle counter of `width` bits.
pub fn cycle_counter(b: &mut NetlistBuilder, name: &str, width: usize) -> RegHandle {
    let r = b.reg(name, width, 0);
    let one = b.lit(1, width);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    r
}

/// Finishes the simulation after `cycles` cycles (adds a dedicated counter)
/// and returns the counter's current-value net.
pub fn finish_after(b: &mut NetlistBuilder, cycles: u64) -> NetId {
    let width = 64 - cycles.leading_zeros() as usize + 1;
    let c = cycle_counter(b, "finish_ctr", width.max(2));
    let limit = b.lit(cycles, c.width());
    let done = b.eq(c.q(), limit);
    b.finish(done);
    c.q()
}
