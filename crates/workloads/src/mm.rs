//! `mm` — a 16×16 integer matrix-matrix multiplier as a weight-stationary
//! systolic array.
//!
//! A spatial multiplier (the step size the paper reports — 74k instructions
//! per cycle — implies a fully spatial design, not a sequential MAC FSM):
//! `n × n` processing elements hold the stationary B matrix; A values
//! stream west→east through pipeline registers while partial sums flow
//! north→south, producing one result column per cycle in steady state.

use manticore_netlist::{NetId, Netlist, NetlistBuilder};

use crate::util::{finish_after, lfsr16};

/// Default: a 16×16 array.
pub fn mm() -> Netlist {
    mm_sized(16, 4200)
}

/// An `n × n` systolic multiplier.
pub fn mm_sized(n: usize, cycles: u64) -> Netlist {
    let mut b = NetlistBuilder::new("mm");

    // A-operand stream: one value per row injected at the west edge.
    let mut a_in: Vec<NetId> = (0..n)
        .map(|r| {
            lfsr16(
                &mut b,
                &format!("a{r}"),
                0x1357u16.wrapping_mul(r as u16 + 1),
            )
        })
        .collect();

    // Stationary B weights (deterministic pseudo-random constants — the
    // pre-loaded matrix).
    let mut w = 0x2468u16;
    let mut weight = |b: &mut NetlistBuilder| {
        w = w.wrapping_mul(25173).wrapping_add(13849);
        b.lit((w & 0xff) as u64, 16)
    };

    // PE grid: data flows east (a), partial sums flow south.
    let mut col_sums: Vec<NetId> = (0..n).map(|_| b.lit(0, 16)).collect();
    for _row in 0..n {
        let mut a = a_in.remove(0);
        for (c, col_sum) in col_sums.iter_mut().enumerate() {
            let wgt = weight(&mut b);
            let prod = b.mul(a, wgt);
            let sum = b.add(*col_sum, prod);
            // Partial-sum pipeline register southward.
            let ps = b.reg(format!("ps_{_row}_{c}"), 16, 0);
            b.set_next(ps, sum);
            *col_sum = ps.q();
            // A pipeline register eastward.
            let ar = b.reg(format!("ad_{_row}_{c}"), 16, 0);
            b.set_next(ar, a);
            a = ar.q();
        }
    }

    // Bottom edge: results drain into a checksum and a column counter
    // tracks completed result columns.
    let mut checksum = col_sums[0];
    for &s in &col_sums[1..] {
        checksum = b.xor(checksum, s);
    }
    let csum = b.reg("checksum", 16, 0);
    let mixed = b.add(csum.q(), checksum);
    b.set_next(csum, mixed);
    b.output("checksum", csum.q());

    let col = b.reg("col", 16, 0);
    let one = b.lit(1, 16);
    let col_next = b.add(col.q(), one);
    b.set_next(col, col_next);
    // A full result matrix every n columns (after the 2n-cycle fill).
    let fill = b.lit((2 * n) as u64, 16);
    let past_fill = b.uge(col.q(), fill);
    let low = b.slice(col.q(), 0, 4);
    let z4 = b.lit(0, 4);
    let aligned = b.eq(low, z4);
    let complete = b.and(past_fill, aligned);
    b.display(complete, "mm complete, checksum = {}", &[csum.q()]);

    // Invariant: the systolic fill delay means the first n cycles produce
    // zero column sums only if A or B were zero; assert the checksum
    // register stays 16-bit sane (trivially true, keeps the driver
    // assertion-based) plus a live-counter bound.
    let bound = b.lit(0xffff, 16);
    let in_range = b.ult(col.q(), bound);
    let at_bound = b.eq(col.q(), bound);
    let ok = b.or(in_range, at_bound);
    b.expect_true(ok, "column counter wrapped");

    finish_after(&mut b, cycles);
    b.finish_build().expect("mm netlist is structurally valid")
}
