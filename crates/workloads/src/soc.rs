//! `soc` — a multi-tile RISC-V-class SoC analog: a torus of MiniRV CPU
//! tiles interleaved (checkerboard) with scratchpad tiles, sized to
//! stress a 16×16 Manticore grid.
//!
//! The existing `rv32r` workload replicates CPUs on a *ring*; real SoC
//! floorplans are 2-D meshes of cores and SRAM macros. This workload is
//! the 2-D analog: every tile drives a 16-bit `link` register that its
//! east/south torus neighbours read, so the communication graph is a
//! torus NoC rather than a ring. CPU tiles are MiniRV cores (4-bit pc,
//! 16-entry ROM, 4 registers — the same ISA as `rv32r` plus a
//! network-combine op); scratchpad tiles are 16-entry×16-bit SRAMs
//! exercised by an LFSR with a read-back accumulator. Each tile owns at
//! least one memory, so after memory-affinity merging the partitioner is
//! left with one-process-per-tile-scale parallelism — the compile-time
//! stress case the pass-manager benchmarks gate on.
//!
//! MiniRV instruction word (16 bits): `op[15:14] rd[13:12] rs[11:10]
//! imm[9:0]`; ops: 0 `addi rd, rs, imm`; 1 `xori rd, rs, imm`;
//! 2 `link.send rs` (drive this tile's link register); 3 `net.add rd, rs`
//! (rd = rs + (west link ^ north link)).

use manticore_bits::Bits;
use manticore_netlist::{Netlist, NetlistBuilder};

use crate::util::{finish_after, lfsr16};

/// Default: a 12×12 tile torus (72 CPU tiles + 72 scratchpad tiles),
/// sized so compilation pressure lands on a 16×16-core machine.
pub fn soc() -> Netlist {
    soc_sized(12, 12, 2000)
}

/// A `tx × ty` tile torus. Tiles with even `x+y` are CPU tiles, odd are
/// scratchpad tiles.
pub fn soc_sized(tx: usize, ty: usize, cycles: u64) -> Netlist {
    assert!(tx >= 2 && ty >= 2, "soc needs at least a 2x2 torus");
    let mut b = NetlistBuilder::new("soc");
    const ROM: usize = 16;

    let encode = |op: u16, rd: u16, rs: u16, imm: u16| -> Bits {
        Bits::from_u64(
            (((op & 3) << 14) | ((rd & 3) << 12) | ((rs & 3) << 10) | (imm & 0x3ff)) as u64,
            16,
        )
    };

    // Link registers first: registers permit forward references, so a tile
    // can read its torus neighbours' links before those tiles are built.
    let link: Vec<Vec<_>> = (0..ty)
        .map(|y| {
            (0..tx)
                .map(|x| b.reg(format!("link_{x}_{y}"), 16, ((y * tx + x) as u64) << 3))
                .collect()
        })
        .collect();

    let mut alive_bits = Vec::new();
    for y in 0..ty {
        for x in 0..tx {
            let k = y * tx + x;
            // Torus inputs: west and north neighbours' link registers.
            let west = link[y][(x + tx - 1) % tx].q();
            let north = link[(y + ty - 1) % ty][x].q();
            let net_in = b.xor(west, north);

            if (x + y) % 2 == 0 {
                // ---- CPU tile: MiniRV core ----
                let kk = k as u16;
                let rom_words: Vec<Bits> = vec![
                    encode(0, 0, 0, (kk * 37 + 11) & 0x3ff), // addi r0, r0, k1
                    encode(1, 1, 0, 0x155),                  // xori r1, r0, 0x155
                    encode(0, 2, 1, (kk * 13 + 5) & 0x3ff),  // addi r2, r1, k2
                    encode(2, 0, 2, 0),                      // link.send r2
                    encode(3, 3, 0, 0),                      // net.add r3, r0
                    encode(1, 0, 3, 0x2aa),                  // xori r0, r3, 0x2aa
                    encode(0, 1, 2, 1),                      // addi r1, r2, 1
                    encode(2, 0, 1, 0),                      // link.send r1
                    encode(3, 2, 1, 0),                      // net.add r2, r1
                    encode(0, 3, 2, (kk * 7 + 3) & 0x3ff),   // addi r3, r2, k3
                    encode(1, 2, 3, 0x0f0),                  // xori r2, r3, 0x0f0
                    encode(2, 0, 3, 0),                      // link.send r3
                    encode(3, 0, 2, 0),                      // net.add r0, r2
                    encode(0, 1, 0, (kk * 5 + 1) & 0x3ff),   // addi r1, r0, k4
                    encode(1, 3, 1, 0x199),                  // xori r3, r1, 0x199
                    encode(2, 0, 0, 0),                      // link.send r0
                ];
                let rom = b.memory_init(format!("rom_{x}_{y}"), ROM, 16, rom_words);

                // Program counter (wraps the 16-entry ROM).
                let pc = b.reg(format!("pc_{x}_{y}"), 4, 0);
                let one4 = b.lit(1, 4);
                let pc_next = b.add(pc.q(), one4);
                b.set_next(pc, pc_next);

                // Fetch + decode.
                let instr = b.mem_read(rom, pc.q());
                let op = b.slice(instr, 14, 2);
                let rd = b.slice(instr, 12, 2);
                let rs = b.slice(instr, 10, 2);
                let imm = b.slice(instr, 0, 10);
                let imm16 = b.zext(imm, 16);

                // 4-entry register file: mux read, decoded write.
                let regs: Vec<_> = (0..4)
                    .map(|i| b.reg(format!("x_{x}_{y}_{i}"), 16, (k * 3 + i + 1) as u64))
                    .collect();
                let mut rs_val = regs[0].q();
                for (i, r) in regs.iter().enumerate().skip(1) {
                    let i_c = b.lit(i as u64, 2);
                    let sel = b.eq(rs, i_c);
                    rs_val = b.mux(sel, r.q(), rs_val);
                }

                // Execute.
                let add_res = b.add(rs_val, imm16);
                let xor_res = b.xor(rs_val, imm16);
                let net_res = b.add(rs_val, net_in);
                let c0 = b.lit(0, 2);
                let c1 = b.lit(1, 2);
                let c2 = b.lit(2, 2);
                let is_add = b.eq(op, c0);
                let is_xor = b.eq(op, c1);
                let is_send = b.eq(op, c2);
                let t = b.mux(is_xor, xor_res, net_res);
                let wb_val = b.mux(is_add, add_res, t);
                let not_send = b.not(is_send);
                for (i, r) in regs.iter().enumerate() {
                    let i_c = b.lit(i as u64, 2);
                    let is_rd = b.eq(rd, i_c);
                    let en = b.and(not_send, is_rd);
                    let next = b.mux(en, wb_val, r.q());
                    b.set_next(*r, next);
                }

                // Link output: updated on link.send, else held.
                let link_next = b.mux(is_send, rs_val, link[y][x].q());
                b.set_next(link[y][x], link_next);

                let z = b.lit(0, 4);
                let pc_ok = b.uge(pc.q(), z); // trivially true: pc in range
                alive_bits.push(pc_ok);
            } else {
                // ---- Scratchpad tile: SRAM + LFSR traffic generator ----
                let mem = b.memory(format!("spad_{x}_{y}"), 16, 16);
                let rnd = lfsr16(&mut b, &format!("sg_{x}_{y}"), (k as u16) * 31 + 7);
                let waddr = b.slice(rnd, 0, 4);
                let raddr = b.slice(rnd, 4, 4);
                // Write the network input mixed with the stimulus, read an
                // unrelated address back into the accumulator.
                let wdata = b.xor(rnd, net_in);
                let one1 = b.lit(1, 1);
                b.mem_write(mem, waddr, wdata, one1);
                let rdata = b.mem_read(mem, raddr);

                let acc = b.reg(format!("acc_{x}_{y}"), 16, (k as u64) * 5 + 1);
                let acc_next = b.add(acc.q(), rdata);
                b.set_next(acc, acc_next);

                // The tile's link output is its accumulator state.
                let mixed = b.xor(acc.q(), rdata);
                b.set_next(link[y][x], mixed);
            }
        }
    }

    // Driver: XOR-fold of all tile links into a running checksum.
    let mut fold = link[0][0].q();
    for r in link.iter().flatten().skip(1) {
        fold = b.xor(fold, r.q());
    }
    let csum = b.reg("soc_csum", 16, 0);
    let mixed = b.add(csum.q(), fold);
    b.set_next(csum, mixed);
    b.output("soc_csum", csum.q());

    let mut ok = alive_bits[0];
    for &a in &alive_bits[1..] {
        ok = b.and(ok, a);
    }
    b.expect_true(ok, "a SoC tile program counter escaped its ROM");

    finish_after(&mut b, cycles);
    b.finish_build().expect("soc netlist is structurally valid")
}
