//! `blur` — a 3×3 stencil accelerator with line buffers.
//!
//! Streams pixels row-major from an LFSR through two line-buffer memories
//! and a 3×3 window register file, producing a weighted blur each cycle —
//! the classic streaming-image-pipeline structure of the paper's stencil
//! benchmark (Cong et al. DAC'14 reuse buffers).

use manticore_netlist::{Netlist, NetlistBuilder};

use crate::util::{finish_after, lfsr16};

/// Default: 4 parallel stencil units over 64-pixel rows.
pub fn blur() -> Netlist {
    blur_sized(64, 4, 2000)
}

/// `banks` independent stencil units over `row_len`-pixel rows (power of
/// two) — a multi-stream image pipeline.
///
/// # Panics
///
/// Panics unless `row_len` is a power of two.
pub fn blur_sized(row_len: usize, banks: usize, cycles: u64) -> Netlist {
    assert!(row_len.is_power_of_two());
    let mut b = NetlistBuilder::new("blur");
    let mut outs = Vec::new();
    for bank in 0..banks {
        outs.push(blur_bank(&mut b, bank, row_len));
    }
    let mut fold = outs[0];
    for &o in &outs[1..] {
        fold = b.xor(fold, o);
    }
    let total = b.reg("total", 16, 0);
    let mixed = b.add(total.q(), fold);
    b.set_next(total, mixed);
    b.output("total", total.q());
    finish_after(&mut b, cycles);
    b.finish_build()
        .expect("blur netlist is structurally valid")
}

/// One stencil unit; returns its output register net.
fn blur_bank(b: &mut NetlistBuilder, bank: usize, row_len: usize) -> manticore_netlist::NetId {
    let xw = row_len.trailing_zeros() as usize;

    // Input stream.
    let pixel_in = lfsr16(
        b,
        &format!("pix{bank}"),
        0xbeefu16.wrapping_add(bank as u16 * 77),
    );

    // Column counter.
    let x = b.reg(format!("x{bank}"), xw, 0);
    let one = b.lit(1, xw);
    let x_next = b.add(x.q(), one);
    b.set_next(x, x_next);

    // Two line buffers: row y-1 and row y-2 at the current column.
    let lb1 = b.memory(format!("line1_{bank}"), row_len, 16);
    let lb2 = b.memory(format!("line2_{bank}"), row_len, 16);
    let top = b.mem_read(lb2, x.q());
    let mid = b.mem_read(lb1, x.q());
    let wen = b.lit(1, 1);
    // Shift the column: line2[x] <= line1[x]; line1[x] <= pixel_in.
    b.mem_write(lb2, x.q(), mid, wen);
    b.mem_write(lb1, x.q(), pixel_in, wen);

    // 3×3 window registers (three taps per row).
    let rows = [top, mid, pixel_in];
    let mut taps = Vec::new();
    for (ri, &row_px) in rows.iter().enumerate() {
        let t1 = b.reg(format!("w{bank}_{ri}_1"), 16, 0);
        let t2 = b.reg(format!("w{bank}_{ri}_2"), 16, 0);
        b.set_next(t2, t1.q());
        b.set_next(t1, row_px);
        taps.push([row_px, t1.q(), t2.q()]);
    }

    // Gaussian-ish kernel: 1 2 1 / 2 4 2 / 1 2 1, then >> 4.
    let weights = [[1u64, 2, 1], [2, 4, 2], [1, 2, 1]];
    let mut sum = b.lit(0, 16);
    for r in 0..3 {
        for c in 0..3 {
            let w = weights[r][c];
            let shifted = match w {
                1 => taps[r][c],
                2 => b.shl_const(taps[r][c], 1),
                4 => b.shl_const(taps[r][c], 2),
                _ => unreachable!(),
            };
            sum = b.add(sum, shifted);
        }
    }
    let out = b.shr_const(sum, 4);
    let out_reg = b.reg(format!("blurred{bank}"), 16, 0);
    b.set_next(out_reg, out);

    // Running checksum of outputs.
    let csum = b.reg(format!("checksum{bank}"), 16, 0);
    let mixed = b.xor(csum.q(), out);
    let bumped = b.add(mixed, out_reg.q());
    b.set_next(csum, bumped);

    // Invariant: blurred value fits 16 bits minus kernel growth (always
    // true after the shift; assert the shift really bounds it).
    if bank == 0 {
        let limit = b.lit(0xf000, 16);
        let ok = b.ult(out, limit);
        b.expect_true(ok, "blur output exceeded kernel bound");
    }
    csum.q()
}
