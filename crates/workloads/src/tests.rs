//! Workload sanity tests: every benchmark must be closed, acyclic,
//! self-checking, and runnable on the reference evaluator. (Machine-level
//! equivalence for all nine lives in the workspace integration tests.)

use manticore_netlist::eval::Evaluator;

use crate::{all, by_name};

#[test]
fn all_nine_exist() {
    let names: Vec<&str> = all().iter().map(|w| w.name).collect();
    assert_eq!(
        names,
        vec!["vta", "mc", "noc", "mm", "rv32r", "cgra", "bc", "blur", "jpeg"]
    );
}

#[test]
fn workloads_are_closed() {
    for w in all() {
        assert!(
            w.netlist.inputs().is_empty(),
            "{} has primary inputs; drivers must be self-contained",
            w.name
        );
    }
}

#[test]
fn workloads_have_assertions_and_finish() {
    for w in all() {
        assert!(
            !w.netlist.expects().is_empty(),
            "{} lacks assertions (the paper wraps benchmarks in assertion drivers)",
            w.name
        );
        assert!(
            !w.netlist.finishes().is_empty(),
            "{} never finishes",
            w.name
        );
    }
}

#[test]
fn workloads_run_clean_on_the_evaluator() {
    for w in all() {
        let mut sim = Evaluator::new(&w.netlist);
        for cycle in 0..w.test_cycles {
            let ev = sim.step();
            assert!(
                ev.failed_expects.is_empty(),
                "{} assertion failed at cycle {cycle}: {:?}",
                w.name,
                ev.failed_expects
            );
            if ev.finished {
                break;
            }
        }
    }
}

#[test]
fn workloads_eventually_finish() {
    for w in all() {
        let mut sim = Evaluator::new(&w.netlist);
        let (cycles, finished) = sim.run(w.bench_cycles + 10);
        assert!(finished, "{} did not finish within {cycles} cycles", w.name);
    }
}

#[test]
fn workload_state_changes_over_time() {
    // Guards against accidentally-constant designs: some register must
    // change within the first 32 cycles.
    for w in all() {
        let mut sim = Evaluator::new(&w.netlist);
        let initial: Vec<_> = sim.reg_values().to_vec();
        for _ in 0..32 {
            sim.step();
        }
        let changed = sim.reg_values().iter().zip(&initial).any(|(a, b)| a != b);
        assert!(changed, "{} state is frozen", w.name);
    }
}

#[test]
fn by_name_lookup() {
    assert!(by_name("jpeg").is_some());
    assert!(by_name("nope").is_none());
}

#[test]
fn soc_is_closed_self_checking_and_runs_clean() {
    // `soc` is the compile-stress extra, not one of the nine — it resolves
    // by name but stays out of `all()` so the evaluation tables keep the
    // paper's benchmark set.
    assert!(all().iter().all(|w| w.name != "soc"));
    let w = by_name("soc").unwrap();
    assert!(w.netlist.inputs().is_empty(), "soc must be closed");
    assert!(!w.netlist.expects().is_empty());
    assert!(!w.netlist.finishes().is_empty());

    // A small torus runs clean and its checksum moves (the links, and
    // therefore the NoC traffic, are live).
    let small = crate::soc_sized(4, 3, 200);
    let mut sim = Evaluator::new(&small);
    let mut csum_changed = false;
    let mut last = 0;
    for cycle in 0..200 {
        let ev = sim.step();
        assert!(
            ev.failed_expects.is_empty(),
            "soc assertion failed at cycle {cycle}: {:?}",
            ev.failed_expects
        );
        let c = sim.output_value("soc_csum").unwrap().to_u64();
        csum_changed |= cycle > 0 && c != last;
        last = c;
        if ev.finished {
            break;
        }
    }
    assert!(
        csum_changed,
        "soc checksum is frozen — tiles are not mixing"
    );
}

#[test]
fn step_sizes_are_ordered_roughly_like_the_paper() {
    // Table 3 orders benchmarks by step size: vta is the largest, jpeg the
    // smallest. Check the two anchors (the middle order is allowed to
    // differ from the paper's x86 instruction counts).
    let sizes: Vec<(String, usize)> = all()
        .iter()
        .map(|w| (w.name.to_string(), w.netlist.nets().len()))
        .collect();
    let jpeg = sizes.iter().find(|(n, _)| n == "jpeg").unwrap().1;
    for (name, s) in &sizes {
        if name != "jpeg" {
            assert!(
                *s > jpeg,
                "jpeg must be the smallest step (it is the serial Amdahl case)"
            );
        }
    }
    let vta = sizes.iter().find(|(n, _)| n == "vta").unwrap().1;
    let blur = sizes.iter().find(|(n, _)| n == "blur").unwrap().1;
    assert!(vta > blur, "vta should dwarf blur");
}

#[test]
fn sha_rounds_mix_state() {
    // bc's hash state must diverge from the SHA-256 IV quickly.
    let w = by_name("bc").unwrap();
    let mut sim = Evaluator::new(&w.netlist);
    sim.step();
    sim.step();
    let a = sim.reg_value(0).to_u64();
    assert_ne!(a, 0x6a09e667, "compression rounds must change `a`");
}

#[test]
fn noc_delivers_flits() {
    let w = by_name("noc").unwrap();
    let mut sim = Evaluator::new(&w.netlist);
    for _ in 0..200 {
        sim.step();
    }
    let delivered = sim.output_value("delivered").unwrap().to_u64();
    assert!(delivered > 0, "no flit was ever delivered");
}

#[test]
fn mm_produces_results() {
    let w = by_name("mm").unwrap();
    let mut sim = Evaluator::new(&w.netlist);
    let mut produced = false;
    for _ in 0..1100 {
        let ev = sim.step();
        produced |= ev.displays.iter().any(|d| d.contains("mm complete"));
        if ev.finished {
            break;
        }
    }
    assert!(produced, "mm never completed a full matrix pass");
}
