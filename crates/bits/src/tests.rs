//! Unit + property tests for `Bits`, checked against `u128` reference math.

use crate::Bits;
use manticore_util::SmallRng;

#[test]
fn construction_and_access() {
    let b = Bits::from_u64(0b1010, 4);
    assert_eq!(b.width(), 4);
    assert!(!b.bit(0));
    assert!(b.bit(1));
    assert!(b.bit(3));
    assert!(!b.bit(100));
    assert_eq!(b.to_u64(), 10);
}

#[test]
fn truncation_on_construction() {
    let b = Bits::from_u64(0x1ff, 8);
    assert_eq!(b.to_u64(), 0xff);
}

#[test]
fn wide_values_cross_limbs() {
    let b = Bits::from_u128(u128::MAX, 100);
    assert_eq!(b.to_u128(), (1u128 << 100) - 1);
    assert!(b.bit(99));
    assert!(!b.bit(100));
}

#[test]
fn add_wraps() {
    let a = Bits::from_u64(0xffff, 16);
    let one = Bits::from_u64(1, 16);
    assert_eq!(a.add(&one).to_u64(), 0);
}

#[test]
fn sub_wraps() {
    let a = Bits::from_u64(0, 16);
    let one = Bits::from_u64(1, 16);
    assert_eq!(a.sub(&one).to_u64(), 0xffff);
}

#[test]
fn add_carries_across_limbs() {
    let a = Bits::from_u128(u64::MAX as u128, 128);
    let b = Bits::from_u128(1, 128);
    assert_eq!(a.add(&b).to_u128(), 1u128 << 64);
}

#[test]
fn mul_truncates() {
    let a = Bits::from_u64(0x100, 16);
    let b = Bits::from_u64(0x100, 16);
    assert_eq!(a.mul(&b).to_u64(), 0); // 0x10000 wraps to 0 at 16 bits
}

#[test]
fn shifts_basic() {
    let a = Bits::from_u64(0b1, 8);
    assert_eq!(a.shl(3).to_u64(), 0b1000);
    assert_eq!(a.shl(8).to_u64(), 0);
    let b = Bits::from_u64(0x80, 8);
    assert_eq!(b.shr(7).to_u64(), 1);
    assert_eq!(b.ashr(7).to_u64(), 0xff);
}

#[test]
fn dynamic_shift_overflow_is_zero() {
    let a = Bits::from_u64(0xff, 8);
    let big = Bits::from_u64(200, 8);
    assert_eq!(a.shl_dyn(&big).to_u64(), 0);
    assert_eq!(a.shr_dyn(&big).to_u64(), 0);
    assert_eq!(a.ashr_dyn(&big).to_u64(), 0xff); // sign bit set -> all ones
}

#[test]
fn slice_and_concat_roundtrip() {
    let a = Bits::from_u64(0xabcd, 16);
    let lo = a.slice(0, 8);
    let hi = a.slice(8, 8);
    assert_eq!(lo.to_u64(), 0xcd);
    assert_eq!(hi.to_u64(), 0xab);
    assert_eq!(lo.concat(&hi).to_u64(), 0xabcd);
}

#[test]
fn comparisons() {
    let a = Bits::from_u64(0x7fff, 16);
    let b = Bits::from_u64(0x8000, 16);
    assert!(a.ult(&b));
    assert!(!b.ult(&a));
    // signed: 0x8000 is negative
    assert!(b.slt(&a));
    assert!(!a.slt(&b));
}

#[test]
fn reductions() {
    assert_eq!(Bits::from_u64(0, 8).reduce_or().to_u64(), 0);
    assert_eq!(Bits::from_u64(4, 8).reduce_or().to_u64(), 1);
    assert_eq!(Bits::from_u64(0xff, 8).reduce_and().to_u64(), 1);
    assert_eq!(Bits::from_u64(0xfe, 8).reduce_and().to_u64(), 0);
    assert_eq!(Bits::from_u64(0b101, 8).reduce_xor().to_u64(), 0);
    assert_eq!(Bits::from_u64(0b111, 8).reduce_xor().to_u64(), 1);
}

#[test]
fn words16_roundtrip() {
    let a = Bits::from_u128(0x1234_5678_9abc_def0_1122, 80);
    let words = a.to_words16();
    assert_eq!(words.len(), 5);
    assert_eq!(Bits::from_words16(&words, 80), a);
}

#[test]
fn sext_zext() {
    let a = Bits::from_u64(0x80, 8);
    assert_eq!(a.zext(16).to_u64(), 0x0080);
    assert_eq!(a.sext(16).to_u64(), 0xff80);
}

#[test]
fn hex_display() {
    assert_eq!(format!("{}", Bits::from_u64(0xbeef, 16)), "beef");
    assert_eq!(format!("{:?}", Bits::from_u64(0, 8)), "8'h0");
    assert_eq!(format!("{:b}", Bits::from_u64(0b101, 3)), "101");
}

fn ref_mask(w: usize) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

/// Seeded property loop: 256 random `(a, b, w)` triples per test, checked
/// against `u128` reference math.
fn for_random_cases(seed: u64, mut check: impl FnMut(u128, u128, usize)) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..256 {
        let a = rng.next_u128();
        let b = rng.next_u128();
        let w = rng.gen_range(1..128);
        check(a, b, w);
    }
}

#[test]
fn prop_add_matches_u128() {
    for_random_cases(0x01, |a, b, w| {
        let x = Bits::from_u128(a, w);
        let y = Bits::from_u128(b, w);
        let expect = (a & ref_mask(w)).wrapping_add(b & ref_mask(w)) & ref_mask(w);
        assert_eq!(x.add(&y).to_u128(), expect);
    });
}

#[test]
fn prop_sub_matches_u128() {
    for_random_cases(0x02, |a, b, w| {
        let x = Bits::from_u128(a, w);
        let y = Bits::from_u128(b, w);
        let expect = (a & ref_mask(w)).wrapping_sub(b & ref_mask(w)) & ref_mask(w);
        assert_eq!(x.sub(&y).to_u128(), expect);
    });
}

#[test]
fn prop_mul_matches_u128() {
    let mut rng = SmallRng::seed_from_u64(0x03);
    for _ in 0..256 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let w = rng.gen_range(1..64);
        let x = Bits::from_u64(a, w);
        let y = Bits::from_u64(b, w);
        let m = ref_mask(w) as u64;
        let expect = (a & m).wrapping_mul(b & m) & m;
        assert_eq!(x.mul(&y).to_u64(), expect);
    }
}

#[test]
fn prop_logic_matches_u128() {
    for_random_cases(0x04, |a, b, w| {
        let x = Bits::from_u128(a, w);
        let y = Bits::from_u128(b, w);
        assert_eq!(x.and(&y).to_u128(), a & b & ref_mask(w));
        assert_eq!(x.or(&y).to_u128(), (a | b) & ref_mask(w));
        assert_eq!(x.xor(&y).to_u128(), (a ^ b) & ref_mask(w));
        assert_eq!(x.not().to_u128(), !a & ref_mask(w));
    });
}

#[test]
fn prop_shifts_match_u128() {
    let mut rng = SmallRng::seed_from_u64(0x05);
    for _ in 0..256 {
        let a = rng.next_u128();
        let w = rng.gen_range(1..128);
        let s = rng.gen_range(0..140);
        let x = Bits::from_u128(a, w);
        let masked = a & ref_mask(w);
        let shl = if s >= w {
            0
        } else {
            (masked << s) & ref_mask(w)
        };
        let shr = if s >= w { 0 } else { masked >> s };
        assert_eq!(x.shl(s).to_u128(), shl);
        assert_eq!(x.shr(s).to_u128(), shr);
    }
}

#[test]
fn prop_ashr_matches_i128() {
    let mut rng = SmallRng::seed_from_u64(0x06);
    for _ in 0..256 {
        let a = rng.next_u128();
        let w = rng.gen_range(2..128);
        let s = rng.gen_range(0..130);
        let x = Bits::from_u128(a, w);
        // reference: sign-extend to i128, shift, re-mask
        let masked = a & ref_mask(w);
        let sign = (masked >> (w - 1)) & 1 == 1;
        let ext = if sign { masked | !ref_mask(w) } else { masked };
        let shifted = (ext as i128) >> s.min(127);
        let expect = (shifted as u128) & ref_mask(w);
        let got = if s >= w {
            if sign {
                ref_mask(w)
            } else {
                0
            }
        } else {
            expect
        };
        assert_eq!(x.ashr(s.min(w)).to_u128(), got);
        if s < w {
            assert_eq!(x.ashr(s).to_u128(), expect);
        }
    }
}

#[test]
fn prop_comparisons_match() {
    for_random_cases(0x07, |a, b, w| {
        let x = Bits::from_u128(a, w);
        let y = Bits::from_u128(b, w);
        let ma = a & ref_mask(w);
        let mb = b & ref_mask(w);
        assert_eq!(x.ult(&y), ma < mb);
        let sign = |v: u128| {
            if (v >> (w - 1)) & 1 == 1 && w < 128 {
                (v | !ref_mask(w)) as i128
            } else {
                v as i128
            }
        };
        assert_eq!(x.slt(&y), sign(ma) < sign(mb));
    });
}

#[test]
fn prop_slice_concat_identity() {
    let mut rng = SmallRng::seed_from_u64(0x08);
    for _ in 0..256 {
        let a = rng.next_u128();
        let w = rng.gen_range(2..128);
        let cut = rng.gen_range(1..127).min(w - 1);
        let x = Bits::from_u128(a, w);
        let lo = x.slice(0, cut);
        let hi = x.slice(cut, w - cut);
        assert_eq!(lo.concat(&hi), x);
    }
}

#[test]
fn prop_words16_roundtrip() {
    for_random_cases(0x09, |a, _b, w| {
        let x = Bits::from_u128(a, w);
        assert_eq!(Bits::from_words16(&x.to_words16(), w), x);
    });
}
