//! Arbitrary-width bit vectors with two's-complement semantics.
//!
//! RTL designs manipulate values of arbitrary bit widths (a 1-bit valid flag,
//! a 48-bit DRAM address, a 256-bit SHA word). [`Bits`] is the value type used
//! throughout the Manticore netlist IR and the netlist-assembly interpreter:
//! a fixed-width, unsigned-by-default bit vector backed by 64-bit limbs, with
//! wrapping two's-complement arithmetic exactly like Verilog's packed vectors.
//!
//! # Examples
//!
//! ```
//! use manticore_bits::Bits;
//!
//! let a = Bits::from_u64(0xfff0, 16);
//! let b = Bits::from_u64(0x0020, 16);
//! let sum = a.add(&b);
//! assert_eq!(sum.to_u64(), 0x0010); // wraps at 16 bits
//! assert_eq!(sum.width(), 16);
//! ```

mod bits;
mod ops;

pub use bits::Bits;

/// Maximum supported width in bits.
///
/// RTL buses wider than this are exceedingly rare; the netlist builder
/// rejects cells that would exceed it.
pub const MAX_WIDTH: usize = 4096;

#[cfg(test)]
mod tests;
