//! Arithmetic, logic, shift, and structural operations on [`Bits`].
//!
//! Binary operations require equal operand widths (the netlist IR inserts
//! explicit extensions); results have the operand width unless documented
//! otherwise. Everything wraps modulo `2^width`.

use crate::Bits;

impl Bits {
    fn assert_same_width(&self, rhs: &Bits) {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }

    /// Wrapping addition.
    pub fn add(&self, rhs: &Bits) -> Bits {
        self.assert_same_width(rhs);
        let mut out = Bits::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Wrapping subtraction (`self - rhs`).
    pub fn sub(&self, rhs: &Bits) -> Bits {
        self.assert_same_width(rhs);
        let mut out = Bits::zero(self.width);
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        out.normalize();
        out
    }

    /// Wrapping multiplication (result truncated to operand width).
    pub fn mul(&self, rhs: &Bits) -> Bits {
        self.assert_same_width(rhs);
        let n = self.limbs.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in 0..n - i {
                let p =
                    (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + acc[i + j] as u128 + carry;
                acc[i + j] = p as u64;
                carry = p >> 64;
            }
        }
        let mut out = Bits::zero(self.width);
        out.limbs = acc;
        out.normalize();
        out
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &Bits) -> Bits {
        self.zip_limbs(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: &Bits) -> Bits {
        self.zip_limbs(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: &Bits) -> Bits {
        self.zip_limbs(rhs, |a, b| a ^ b)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bits {
        let mut out = Bits::zero(self.width);
        for i in 0..self.limbs.len() {
            out.limbs[i] = !self.limbs[i];
        }
        out.normalize();
        out
    }

    fn zip_limbs(&self, rhs: &Bits, f: impl Fn(u64, u64) -> u64) -> Bits {
        self.assert_same_width(rhs);
        let mut out = Bits::zero(self.width);
        for i in 0..self.limbs.len() {
            out.limbs[i] = f(self.limbs[i], rhs.limbs[i]);
        }
        out.normalize();
        out
    }

    /// Logical left shift by `amount` bit positions.
    pub fn shl(&self, amount: usize) -> Bits {
        let mut out = Bits::zero(self.width);
        if amount >= self.width {
            return out;
        }
        let limb_shift = amount / 64;
        let bit_shift = amount % 64;
        for i in (0..self.limbs.len()).rev() {
            if i >= limb_shift {
                let mut v = self.limbs[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i > limb_shift {
                    v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
                }
                out.limbs[i] = v;
            }
        }
        out.normalize();
        out
    }

    /// Logical right shift by `amount` bit positions.
    pub fn shr(&self, amount: usize) -> Bits {
        let mut out = Bits::zero(self.width);
        if amount >= self.width {
            return out;
        }
        let limb_shift = amount / 64;
        let bit_shift = amount % 64;
        for i in 0..self.limbs.len() {
            if i + limb_shift < self.limbs.len() {
                let mut v = self.limbs[i + limb_shift] >> bit_shift;
                if bit_shift > 0 && i + limb_shift + 1 < self.limbs.len() {
                    v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
                }
                out.limbs[i] = v;
            }
        }
        out.normalize();
        out
    }

    /// Arithmetic right shift by `amount` bit positions (sign-extending).
    pub fn ashr(&self, amount: usize) -> Bits {
        let sign = self.msb();
        if amount >= self.width {
            return if sign {
                Bits::ones(self.width)
            } else {
                Bits::zero(self.width)
            };
        }
        let mut out = self.shr(amount);
        if sign {
            for i in self.width - amount..self.width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Shift left by a dynamic amount held in another value (Verilog `<<`).
    pub fn shl_dyn(&self, amount: &Bits) -> Bits {
        match amount.checked_shift_amount(self.width) {
            Some(a) => self.shl(a),
            None => Bits::zero(self.width),
        }
    }

    /// Shift right (logical) by a dynamic amount (Verilog `>>`).
    pub fn shr_dyn(&self, amount: &Bits) -> Bits {
        match amount.checked_shift_amount(self.width) {
            Some(a) => self.shr(a),
            None => Bits::zero(self.width),
        }
    }

    /// Shift right (arithmetic) by a dynamic amount (Verilog `>>>`).
    pub fn ashr_dyn(&self, amount: &Bits) -> Bits {
        match amount.checked_shift_amount(self.width) {
            Some(a) => self.ashr(a),
            None => {
                if self.msb() {
                    Bits::ones(self.width)
                } else {
                    Bits::zero(self.width)
                }
            }
        }
    }

    /// Returns the shift amount if it is `< limit`, else `None`.
    fn checked_shift_amount(&self, limit: usize) -> Option<usize> {
        if self.limbs.iter().skip(1).any(|&l| l != 0) {
            return None;
        }
        let a = self.limbs[0];
        if a >= limit as u64 {
            None
        } else {
            Some(a as usize)
        }
    }

    /// Unsigned less-than.
    pub fn ult(&self, rhs: &Bits) -> bool {
        self.assert_same_width(rhs);
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != rhs.limbs[i] {
                return self.limbs[i] < rhs.limbs[i];
            }
        }
        false
    }

    /// Signed (two's-complement) less-than.
    pub fn slt(&self, rhs: &Bits) -> bool {
        match (self.msb(), rhs.msb()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.ult(rhs),
        }
    }

    /// Extracts `width` bits starting at `offset` (Verilog `x[offset +: width]`).
    ///
    /// # Panics
    ///
    /// Panics if the slice would read past the end of the value.
    pub fn slice(&self, offset: usize, width: usize) -> Bits {
        assert!(
            offset + width <= self.width,
            "slice [{offset} +: {width}] out of range for width {}",
            self.width
        );
        self.shr(offset).truncate(width)
    }

    /// Truncates to the low `width` bits (`width <= self.width()`).
    pub fn truncate(&self, width: usize) -> Bits {
        assert!(width <= self.width, "truncate target wider than source");
        let mut out = Bits::zero(width);
        let n = out.limbs.len();
        out.limbs.copy_from_slice(&self.limbs[..n]);
        out.normalize();
        out
    }

    /// Zero-extends to `width` bits (`width >= self.width()`).
    pub fn zext(&self, width: usize) -> Bits {
        assert!(width >= self.width, "zext target narrower than source");
        let mut out = Bits::zero(width);
        out.limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }

    /// Sign-extends to `width` bits (`width >= self.width()`).
    pub fn sext(&self, width: usize) -> Bits {
        let mut out = self.zext(width);
        if self.msb() {
            for i in self.width..width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Concatenates `hi` above `self` (`{hi, self}` in Verilog terms).
    pub fn concat(&self, hi: &Bits) -> Bits {
        let w = self.width + hi.width;
        let lo = self.zext(w);
        lo.or(&hi.zext(w).shl(self.width))
    }

    /// Reduction OR: 1-bit result, true if any bit is set.
    pub fn reduce_or(&self) -> Bits {
        Bits::from_bool(!self.is_zero())
    }

    /// Reduction AND: 1-bit result, true if all bits are set.
    pub fn reduce_and(&self) -> Bits {
        Bits::from_bool(*self == Bits::ones(self.width))
    }

    /// Reduction XOR: 1-bit result, parity of the population count.
    pub fn reduce_xor(&self) -> Bits {
        let pop: u32 = self.limbs.iter().map(|l| l.count_ones()).sum();
        Bits::from_bool(pop % 2 == 1)
    }

    /// Ternary select: `if cond { self } else { other }` where `cond` is 1-bit
    /// truthiness of `sel` (any non-zero selects `self`).
    pub fn mux(sel: &Bits, if_true: &Bits, if_false: &Bits) -> Bits {
        if sel.is_zero() {
            if_false.clone()
        } else {
            if_true.clone()
        }
    }
}
