//! The [`Bits`] container: construction, access, formatting.

use std::fmt;

use crate::MAX_WIDTH;

/// A fixed-width bit vector backed by 64-bit limbs.
///
/// All arithmetic wraps modulo `2^width` (Verilog packed-vector semantics).
/// The invariant maintained by every constructor and operation is that bits
/// above `width` in the last limb are zero, which lets equality and hashing
/// be derived structurally.
///
/// # Examples
///
/// ```
/// use manticore_bits::Bits;
/// let x = Bits::from_u64(0b1011, 4);
/// assert_eq!(x.bit(0), true);
/// assert_eq!(x.bit(2), false);
/// assert_eq!(x.to_u64(), 11);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    /// Little-endian limbs; `limbs.len() == ceil(width/64)` (1 for width 0).
    pub(crate) limbs: Vec<u64>,
    pub(crate) width: usize,
}

impl Bits {
    /// Creates an all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn zero(width: usize) -> Self {
        assert!(width > 0, "Bits width must be non-zero");
        assert!(width <= MAX_WIDTH, "Bits width {width} exceeds MAX_WIDTH");
        Bits {
            limbs: vec![0; width.div_ceil(64)],
            width,
        }
    }

    /// Creates an all-ones value of the given width.
    pub fn ones(width: usize) -> Self {
        let mut b = Self::zero(width);
        for l in &mut b.limbs {
            *l = u64::MAX;
        }
        b.normalize();
        b
    }

    /// Creates a value from a `u64`, truncating to `width` bits.
    pub fn from_u64(value: u64, width: usize) -> Self {
        let mut b = Self::zero(width);
        b.limbs[0] = value;
        b.normalize();
        b
    }

    /// Creates a value from a `u128`, truncating to `width` bits.
    pub fn from_u128(value: u128, width: usize) -> Self {
        let mut b = Self::zero(width);
        b.limbs[0] = value as u64;
        if b.limbs.len() > 1 {
            b.limbs[1] = (value >> 64) as u64;
        }
        b.normalize();
        b
    }

    /// Creates a single-bit value.
    pub fn from_bool(value: bool) -> Self {
        Self::from_u64(value as u64, 1)
    }

    /// Creates a value from little-endian 16-bit words, truncating to `width`.
    ///
    /// This is the interface between the 16-bit lowered program state and the
    /// arbitrary-width netlist state.
    pub fn from_words16(words: &[u16], width: usize) -> Self {
        let mut b = Self::zero(width);
        for (i, &w) in words.iter().enumerate() {
            let limb = i / 4;
            if limb >= b.limbs.len() {
                break;
            }
            b.limbs[limb] |= (w as u64) << ((i % 4) * 16);
        }
        b.normalize();
        b
    }

    /// Returns the value as little-endian 16-bit words (`ceil(width/16)` of them).
    pub fn to_words16(&self) -> Vec<u16> {
        let n = self.width.div_ceil(16);
        (0..n)
            .map(|i| (self.limbs[i / 4] >> ((i % 4) * 16)) as u16)
            .collect()
    }

    /// The width of this value in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the low 64 bits of the value.
    pub fn to_u64(&self) -> u64 {
        self.limbs[0] & Self::mask_for(self.width.min(64))
    }

    /// Returns the low 128 bits of the value.
    pub fn to_u128(&self) -> u128 {
        let lo = self.limbs[0] as u128;
        let hi = if self.limbs.len() > 1 {
            self.limbs[1] as u128
        } else {
            0
        };
        let v = lo | (hi << 64);
        if self.width >= 128 {
            v
        } else {
            v & ((1u128 << self.width) - 1)
        }
    }

    /// Returns bit `i` (false if `i >= width`).
    pub fn bit(&self, i: usize) -> bool {
        if i >= self.width {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// The most-significant (sign) bit.
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Mask with the low `bits` bits set (`bits <= 64`).
    pub(crate) fn mask_for(bits: usize) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }

    /// Clears any bits above `width` in the top limb (restores the invariant).
    pub(crate) fn normalize(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= Self::mask_for(rem);
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(self, f)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for limb in self.limbs.iter().rev() {
            if started {
                write!(f, "{limb:016x}")?;
            } else if *limb != 0 {
                write!(f, "{limb:x}")?;
                started = true;
            }
        }
        if !started {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        Ok(())
    }
}

impl From<bool> for Bits {
    fn from(b: bool) -> Self {
        Bits::from_bool(b)
    }
}
