//! Assembly text rendering — the human-readable form of machine programs,
//! in the style of the paper's Listing 3.
//!
//! [`Instruction`] implements [`std::fmt::Display`] with the paper's
//! mnemonics (`ADD`, `SEND`, `EXPECT`, `LLD`, …), and
//! [`disassemble`] renders a whole [`Binary`] with per-core sections,
//! boot-time register initialization, and Vcycle framing — useful for
//! debugging compiler output and for golden-file tests.

use std::fmt;

use crate::binary::Binary;
use crate::instr::{AluOp, Instruction};

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "ADD",
            AluOp::Sub => "SUB",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::Sll => "SLL",
            AluOp::Srl => "SRL",
            AluOp::Sra => "SRA",
            AluOp::Seq => "SEQ",
            AluOp::Sltu => "SLTU",
            AluOp::Slts => "SLTS",
            AluOp::Mul => "MUL",
            AluOp::Mulh => "MULH",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Nop => write!(f, "NOP"),
            Instruction::Set { rd, imm } => write!(f, "SET {rd}, {imm:#06x}"),
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{op} {rd}, {rs1}, {rs2}")
            }
            Instruction::AddCarry {
                rd,
                rs1,
                rs2,
                rs_carry,
            } => {
                write!(f, "ADDC {rd}, {rs1}, {rs2}, carry({rs_carry})")
            }
            Instruction::SubBorrow {
                rd,
                rs1,
                rs2,
                rs_borrow,
            } => {
                write!(f, "SUBB {rd}, {rs1}, {rs2}, borrow({rs_borrow})")
            }
            Instruction::Mux {
                rd,
                rs_sel,
                rs1,
                rs2,
            } => {
                write!(f, "MUX {rd}, {rs_sel} ? {rs1} : {rs2}")
            }
            Instruction::Slice {
                rd,
                rs,
                offset,
                width,
            } => {
                write!(f, "SLICE {rd}, {rs}[{offset} +: {width}]")
            }
            Instruction::Custom { rd, func, rs } => {
                write!(
                    f,
                    "CUST f{func} {rd}, {}, {}, {}, {}",
                    rs[0], rs[1], rs[2], rs[3]
                )
            }
            Instruction::Predicate { rs } => write!(f, "PRED {rs}"),
            Instruction::LocalLoad { rd, rs_addr, base } => {
                write!(f, "LLD {rd}, m[{base} + {rs_addr}]")
            }
            Instruction::LocalStore {
                rs_data,
                rs_addr,
                base,
            } => {
                write!(f, "LST {rs_data}, m[{base} + {rs_addr}]")
            }
            Instruction::GlobalLoad { rd, rs_addr } => {
                write!(
                    f,
                    "GLD {rd}, [{}:{}:{}]",
                    rs_addr[2], rs_addr[1], rs_addr[0]
                )
            }
            Instruction::GlobalStore { rs_data, rs_addr } => {
                write!(
                    f,
                    "GST {rs_data}, [{}:{}:{}]",
                    rs_addr[2], rs_addr[1], rs_addr[0]
                )
            }
            Instruction::Send {
                target,
                rd_remote,
                rs,
            } => {
                write!(f, "SEND {rd_remote}@{target}, {rs}")
            }
            Instruction::Expect { rs1, rs2, eid } => {
                write!(f, "EXPECT {rs1}, {rs2}, eid={eid}")
            }
        }
    }
}

/// Renders a whole binary as assembly text.
pub fn disassemble(binary: &Binary) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "; manticore binary: {}x{} grid, vcycle = {} cycles",
        binary.grid_width, binary.grid_height, binary.vcycle_len
    );
    for core in &binary.cores {
        let _ = writeln!(s, "\n.core {},{}:", core.core.x, core.core.y);
        if !core.init_regs.is_empty() {
            let inits: Vec<String> = core
                .init_regs
                .iter()
                .map(|(r, v)| format!("{r}={v:#x}"))
                .collect();
            let _ = writeln!(s, "  ; init {}", inits.join(" "));
        }
        for (i, table) in core.custom_functions.iter().enumerate() {
            let _ = writeln!(s, "  ; cfu f{i} table[lane0]={:#06x}", table[0]);
        }
        let mut nop_run = 0usize;
        for (pc, instr) in core.body.iter().enumerate() {
            if matches!(instr, Instruction::Nop) {
                nop_run += 1;
                continue;
            }
            if nop_run > 0 {
                let _ = writeln!(s, "  ...   ; {nop_run} NOPs");
                nop_run = 0;
            }
            let _ = writeln!(s, "  {pc:#06x}: {instr}");
        }
        if nop_run > 0 {
            let _ = writeln!(s, "  ...   ; {nop_run} NOPs");
        }
        let _ = writeln!(s, "  ; epilogue: {} message slot(s)", core.epilogue_len);
    }
    if !binary.exceptions.is_empty() {
        let _ = writeln!(s, "\n.exceptions:");
        for e in &binary.exceptions {
            let _ = writeln!(s, "  {}: {:?}", e.id.0, e.kind);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CoreId, Reg};
    use crate::{CoreImage, ExceptionDescriptor, ExceptionId, ExceptionKind};

    #[test]
    fn instruction_mnemonics() {
        let i = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(i.to_string(), "ADD $r3, $r1, $r2");
        let send = Instruction::Send {
            target: CoreId::new(2, 1),
            rd_remote: Reg(7),
            rs: Reg(5),
        };
        assert_eq!(send.to_string(), "SEND $r7@core(2,1), $r5");
        assert_eq!(Instruction::Nop.to_string(), "NOP");
        let lld = Instruction::LocalLoad {
            rd: Reg(9),
            rs_addr: Reg(4),
            base: 256,
        };
        assert_eq!(lld.to_string(), "LLD $r9, m[256 + $r4]");
    }

    #[test]
    fn disassembly_compacts_nop_runs() {
        let binary = Binary {
            grid_width: 1,
            grid_height: 1,
            vcycle_len: 16,
            cores: vec![CoreImage {
                core: CoreId::new(0, 0),
                body: vec![
                    Instruction::Set { rd: Reg(1), imm: 7 },
                    Instruction::Nop,
                    Instruction::Nop,
                    Instruction::Nop,
                    Instruction::Alu {
                        op: AluOp::Xor,
                        rd: Reg(2),
                        rs1: Reg(1),
                        rs2: Reg(1),
                    },
                ],
                epilogue_len: 2,
                custom_functions: vec![[0xcafe; 16]],
                init_regs: vec![(Reg(1), 42)],
                init_scratch: vec![],
            }],
            exceptions: vec![ExceptionDescriptor {
                id: ExceptionId(0),
                kind: ExceptionKind::Finish,
            }],
            init_dram: vec![],
        };
        let text = disassemble(&binary);
        assert!(text.contains(".core 0,0:"));
        assert!(text.contains("; init $r1=0x2a"));
        assert!(text.contains("; cfu f0 table[lane0]=0xcafe"));
        assert!(text.contains("...   ; 3 NOPs"));
        assert!(text.contains("XOR $r2, $r1, $r1"));
        assert!(text.contains("epilogue: 2 message slot(s)"));
        assert!(text.contains(".exceptions:"));
    }
}
