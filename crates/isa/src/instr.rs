//! Instruction definitions and 64-bit binary encoding.
//!
//! Instructions are stored in a 4096×64 URAM per core, so every instruction
//! encodes into one `u64` word. The encoding here packs a 6-bit opcode in
//! the top bits and 11-bit register specifiers below; it round-trips through
//! [`Instruction::encode`]/[`Instruction::decode`] and is what the
//! bootloader streams over the NoC.

use std::fmt;

/// A machine register specifier (0..2048).
///
/// Register 0 is reserved by convention to hold zero: the compiler
/// initializes it to 0 and never writes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Index into the register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

/// A core's position in the processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId {
    /// Column (0..grid width).
    pub x: u8,
    /// Row (0..grid height).
    pub y: u8,
}

impl CoreId {
    /// Creates a core id.
    pub fn new(x: u8, y: u8) -> Self {
        CoreId { x, y }
    }

    /// Linear index in row-major order for a grid of the given width.
    pub fn linear(self, grid_width: usize) -> usize {
        self.y as usize * grid_width + self.x as usize
    }

    /// The privileged core (the only one allowed to execute global memory
    /// accesses and `Expect`).
    pub const PRIVILEGED: CoreId = CoreId { x: 0, y: 0 };
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core({},{})", self.x, self.y)
    }
}

/// Two-operand ALU operations.
///
/// Shift amounts ≥ 16 produce 0 for `Sll`/`Srl` and the sign fill for `Sra`
/// (the compiler's wide-shift lowering relies on this saturation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = rs1 + rs2`; carry-out written to `rd`'s carry bit.
    Add,
    /// `rd = rs1 - rs2`; "no borrow" (`rs1 >= rs2`) written to carry bit.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rs2` (saturating at 16).
    Sll,
    /// Logical shift right by `rs2` (saturating at 16).
    Srl,
    /// Arithmetic shift right by `rs2` (saturating at 16).
    Sra,
    /// Set-if-equal: `rd = (rs1 == rs2) as u16`.
    Seq,
    /// Set-if-less-than, unsigned.
    Sltu,
    /// Set-if-less-than, signed (two's complement).
    Slts,
    /// Low 16 bits of `rs1 * rs2`.
    Mul,
    /// High 16 bits of `rs1 * rs2` (unsigned).
    Mulh,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Seq,
        AluOp::Sltu,
        AluOp::Slts,
        AluOp::Mul,
        AluOp::Mulh,
    ];

    /// Evaluates the operation on 16-bit operands; returns `(result, carry)`.
    ///
    /// `carry` is meaningful for `Add` (carry-out) and `Sub` (no-borrow);
    /// other ops return `false`.
    ///
    /// `#[inline]` matters: every execution engine calls this in its
    /// hottest loop from another crate, and the gang engine relies on
    /// constant-receiver calls (`AluOp::Add.eval(..)`) folding to the
    /// single arm inside its per-lane loops.
    #[inline]
    pub fn eval(self, a: u16, b: u16) -> (u16, bool) {
        match self {
            AluOp::Add => {
                let (r, c) = a.overflowing_add(b);
                (r, c)
            }
            AluOp::Sub => {
                let (r, borrow) = a.overflowing_sub(b);
                (r, !borrow)
            }
            AluOp::And => (a & b, false),
            AluOp::Or => (a | b, false),
            AluOp::Xor => (a ^ b, false),
            AluOp::Sll => (if b >= 16 { 0 } else { a << b }, false),
            AluOp::Srl => (if b >= 16 { 0 } else { a >> b }, false),
            AluOp::Sra => {
                let sh = (b as u32).min(15);
                (((a as i16) >> sh) as u16, false)
            }
            AluOp::Seq => ((a == b) as u16, false),
            AluOp::Sltu => ((a < b) as u16, false),
            AluOp::Slts => (((a as i16) < (b as i16)) as u16, false),
            AluOp::Mul => (a.wrapping_mul(b), false),
            AluOp::Mulh => (((a as u32 * b as u32) >> 16) as u16, false),
        }
    }
}

/// One Manticore instruction.
///
/// `GlobalLoad`, `GlobalStore`, and `Expect` are *privileged*: only
/// [`CoreId::PRIVILEGED`] may execute them, because they can stall the whole
/// grid (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Do nothing for one cycle (schedule filler).
    Nop,
    /// `rd = imm`. Also the form messages take when the NoC writes them
    /// into the instruction-memory tail.
    Set {
        /// Destination register.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
    },
    /// Two-operand ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 + rs2 + carry(rs_carry)`; carry-out to `rd`'s carry bit.
    /// The middle/top links of a ripple-carry chain for wide additions.
    AddCarry {
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Register whose carry bit supplies the carry-in.
        rs_carry: Reg,
    },
    /// `rd = rs1 - rs2 - !carry(rs_borrow)`; no-borrow out to `rd`'s carry
    /// bit (ARM-style subtract-with-carry).
    SubBorrow {
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Register whose carry bit supplies the inverted borrow-in.
        rs_borrow: Reg,
    },
    /// `rd = if rs_sel != 0 { rs1 } else { rs2 }`.
    Mux {
        /// Destination.
        rd: Reg,
        /// Select register (any non-zero value selects `rs1`).
        rs_sel: Reg,
        /// Value when selected.
        rs1: Reg,
        /// Value otherwise.
        rs2: Reg,
    },
    /// `rd = (rs >> offset) & ((1 << width) - 1)`: in-word bit-field extract.
    Slice {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// LSB offset (0..16).
        offset: u8,
        /// Field width (1..=16).
        width: u8,
    },
    /// Custom function: `rd[i] = table[func](rs[0][i], rs[1][i], rs[2][i],
    /// rs[3][i])` for every bit lane `i` — a 4-input LUT applied across the
    /// 16-bit word. Truth tables are programmed at boot.
    Custom {
        /// Destination.
        rd: Reg,
        /// Index into the core's custom-function table (0..32).
        func: u8,
        /// The four inputs (unused inputs wired to [`Reg::ZERO`]).
        rs: [Reg; 4],
    },
    /// Sets the core's predicate register from `rs` (non-zero = true).
    /// Subsequent stores execute only while the predicate is true.
    Predicate {
        /// Source register.
        rs: Reg,
    },
    /// `rd = scratch[(base + rs_addr) mod scratch_size]`. Unconditional.
    LocalLoad {
        /// Destination.
        rd: Reg,
        /// Dynamic address component.
        rs_addr: Reg,
        /// Static base address (compiler-allocated memory region).
        base: u16,
    },
    /// `if pred { scratch[(base + rs_addr) mod scratch_size] = rs_data }`.
    LocalStore {
        /// Data register.
        rs_data: Reg,
        /// Dynamic address component.
        rs_addr: Reg,
        /// Static base address.
        base: u16,
    },
    /// Privileged: `rd = dram[addr]` through the cache; stalls the grid.
    /// The 48-bit word address is `{rs_addr[2], rs_addr[1], rs_addr[0]}`.
    GlobalLoad {
        /// Destination.
        rd: Reg,
        /// Address registers, least-significant word first.
        rs_addr: [Reg; 3],
    },
    /// Privileged, predicated: `if pred { dram[addr] = rs_data }`.
    GlobalStore {
        /// Data register.
        rs_data: Reg,
        /// Address registers, least-significant word first.
        rs_addr: [Reg; 3],
    },
    /// Sends the value of `rs` to core `target`, requesting that its
    /// register `rd_remote` be updated (takes effect at the end of the
    /// target's virtual cycle). The only inter-core communication.
    Send {
        /// Receiving core.
        target: CoreId,
        /// Register to update on the receiving core.
        rd_remote: Reg,
        /// Local source register.
        rs: Reg,
    },
    /// Privileged: raise exception `eid` if `rs1 != rs2`. The grid stalls
    /// and the host services the exception (print, assert, finish).
    Expect {
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Exception id (index into the binary's exception table).
        eid: u16,
    },
}

impl Instruction {
    /// True for instructions only the privileged core may execute.
    pub fn is_privileged(&self) -> bool {
        matches!(
            self,
            Instruction::GlobalLoad { .. }
                | Instruction::GlobalStore { .. }
                | Instruction::Expect { .. }
        )
    }

    /// The destination register, if the instruction writes one.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instruction::Set { rd, .. }
            | Instruction::Alu { rd, .. }
            | Instruction::AddCarry { rd, .. }
            | Instruction::SubBorrow { rd, .. }
            | Instruction::Mux { rd, .. }
            | Instruction::Slice { rd, .. }
            | Instruction::Custom { rd, .. }
            | Instruction::LocalLoad { rd, .. }
            | Instruction::GlobalLoad { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Source registers read by the instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instruction::Nop | Instruction::Set { .. } => vec![],
            Instruction::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            Instruction::AddCarry {
                rs1, rs2, rs_carry, ..
            } => vec![rs1, rs2, rs_carry],
            Instruction::SubBorrow {
                rs1,
                rs2,
                rs_borrow,
                ..
            } => vec![rs1, rs2, rs_borrow],
            Instruction::Mux {
                rs_sel, rs1, rs2, ..
            } => vec![rs_sel, rs1, rs2],
            Instruction::Slice { rs, .. } => vec![rs],
            Instruction::Custom { rs, .. } => rs.to_vec(),
            Instruction::Predicate { rs } => vec![rs],
            Instruction::LocalLoad { rs_addr, .. } => vec![rs_addr],
            Instruction::LocalStore {
                rs_data, rs_addr, ..
            } => vec![rs_data, rs_addr],
            Instruction::GlobalLoad { rs_addr, .. } => rs_addr.to_vec(),
            Instruction::GlobalStore {
                rs_data, rs_addr, ..
            } => {
                let mut v = vec![rs_data];
                v.extend(rs_addr);
                v
            }
            Instruction::Send { rs, .. } => vec![rs],
            Instruction::Expect { rs1, rs2, .. } => vec![rs1, rs2],
        }
    }
}

/// Error decoding a 64-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u64,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#018x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcodes (6 bits at [63:58]). Custom functions get a dedicated opcode each
// (OP_CUSTOM_BASE..+32) because 5 register specifiers leave no room for a
// function index field.
const OP_NOP: u64 = 0;
const OP_SET: u64 = 1;
const OP_ALU_BASE: u64 = 2; // 2..=14: one per AluOp
const OP_ADDCARRY: u64 = 15;
const OP_SUBBORROW: u64 = 16;
const OP_MUX: u64 = 17;
const OP_SLICE: u64 = 18;
const OP_PREDICATE: u64 = 20;
const OP_LLD: u64 = 21;
const OP_LST: u64 = 22;
const OP_GLD: u64 = 23;
const OP_GST: u64 = 24;
const OP_SEND: u64 = 25;
const OP_EXPECT: u64 = 26;
const OP_CUSTOM_BASE: u64 = 27; // 27..59: one per custom function slot

const R_BITS: u64 = 11;
const R_MASK: u64 = (1 << R_BITS) - 1;

fn pack_regs(regs: &[Reg]) -> u64 {
    let mut v = 0u64;
    for (i, r) in regs.iter().enumerate() {
        v |= ((r.0 as u64) & R_MASK) << (i as u64 * R_BITS);
    }
    v
}

fn unpack_reg(word: u64, slot: u64) -> Reg {
    Reg(((word >> (slot * R_BITS)) & R_MASK) as u16)
}

impl Instruction {
    /// Encodes to a 64-bit instruction word.
    pub fn encode(&self) -> u64 {
        let op = |code: u64| code << 58;
        match *self {
            Instruction::Nop => op(OP_NOP),
            Instruction::Set { rd, imm } => {
                op(OP_SET) | pack_regs(&[rd]) | ((imm as u64) << R_BITS)
            }
            Instruction::Alu {
                op: aop,
                rd,
                rs1,
                rs2,
            } => {
                let idx = AluOp::ALL.iter().position(|o| *o == aop).unwrap() as u64;
                op(OP_ALU_BASE + idx) | pack_regs(&[rd, rs1, rs2])
            }
            Instruction::AddCarry {
                rd,
                rs1,
                rs2,
                rs_carry,
            } => op(OP_ADDCARRY) | pack_regs(&[rd, rs1, rs2, rs_carry]),
            Instruction::SubBorrow {
                rd,
                rs1,
                rs2,
                rs_borrow,
            } => op(OP_SUBBORROW) | pack_regs(&[rd, rs1, rs2, rs_borrow]),
            Instruction::Mux {
                rd,
                rs_sel,
                rs1,
                rs2,
            } => op(OP_MUX) | pack_regs(&[rd, rs_sel, rs1, rs2]),
            Instruction::Slice {
                rd,
                rs,
                offset,
                width,
            } => {
                op(OP_SLICE)
                    | pack_regs(&[rd, rs])
                    | ((offset as u64) << (2 * R_BITS))
                    | ((width as u64) << (2 * R_BITS + 5))
            }
            Instruction::Custom { rd, func, rs } => {
                op(OP_CUSTOM_BASE + func as u64) | pack_regs(&[rd, rs[0], rs[1], rs[2], rs[3]])
            }
            Instruction::Predicate { rs } => op(OP_PREDICATE) | pack_regs(&[rs]),
            Instruction::LocalLoad { rd, rs_addr, base } => {
                op(OP_LLD) | pack_regs(&[rd, rs_addr]) | ((base as u64) << (2 * R_BITS))
            }
            Instruction::LocalStore {
                rs_data,
                rs_addr,
                base,
            } => op(OP_LST) | pack_regs(&[rs_data, rs_addr]) | ((base as u64) << (2 * R_BITS)),
            Instruction::GlobalLoad { rd, rs_addr } => {
                op(OP_GLD) | pack_regs(&[rd, rs_addr[0], rs_addr[1], rs_addr[2]])
            }
            Instruction::GlobalStore { rs_data, rs_addr } => {
                op(OP_GST) | pack_regs(&[rs_data, rs_addr[0], rs_addr[1], rs_addr[2]])
            }
            Instruction::Send {
                target,
                rd_remote,
                rs,
            } => {
                op(OP_SEND)
                    | pack_regs(&[rd_remote, rs])
                    | ((target.x as u64) << (2 * R_BITS))
                    | ((target.y as u64) << (2 * R_BITS + 6))
            }
            Instruction::Expect { rs1, rs2, eid } => {
                op(OP_EXPECT) | pack_regs(&[rs1, rs2]) | ((eid as u64) << (2 * R_BITS))
            }
        }
    }

    /// Decodes a 64-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes.
    pub fn decode(word: u64) -> Result<Instruction, DecodeError> {
        let opcode = word >> 58;
        let imm16 = ((word >> (2 * R_BITS)) & 0xffff) as u16;
        Ok(match opcode {
            OP_NOP => Instruction::Nop,
            OP_SET => Instruction::Set {
                rd: unpack_reg(word, 0),
                imm: ((word >> R_BITS) & 0xffff) as u16,
            },
            o if (OP_ALU_BASE..OP_ALU_BASE + AluOp::ALL.len() as u64).contains(&o) => {
                Instruction::Alu {
                    op: AluOp::ALL[(o - OP_ALU_BASE) as usize],
                    rd: unpack_reg(word, 0),
                    rs1: unpack_reg(word, 1),
                    rs2: unpack_reg(word, 2),
                }
            }
            OP_ADDCARRY => Instruction::AddCarry {
                rd: unpack_reg(word, 0),
                rs1: unpack_reg(word, 1),
                rs2: unpack_reg(word, 2),
                rs_carry: unpack_reg(word, 3),
            },
            OP_SUBBORROW => Instruction::SubBorrow {
                rd: unpack_reg(word, 0),
                rs1: unpack_reg(word, 1),
                rs2: unpack_reg(word, 2),
                rs_borrow: unpack_reg(word, 3),
            },
            OP_MUX => Instruction::Mux {
                rd: unpack_reg(word, 0),
                rs_sel: unpack_reg(word, 1),
                rs1: unpack_reg(word, 2),
                rs2: unpack_reg(word, 3),
            },
            OP_SLICE => Instruction::Slice {
                rd: unpack_reg(word, 0),
                rs: unpack_reg(word, 1),
                offset: ((word >> (2 * R_BITS)) & 0x1f) as u8,
                width: ((word >> (2 * R_BITS + 5)) & 0x1f) as u8,
            },
            o if (OP_CUSTOM_BASE..OP_CUSTOM_BASE + 32).contains(&o) => Instruction::Custom {
                rd: unpack_reg(word, 0),
                rs: [
                    unpack_reg(word, 1),
                    unpack_reg(word, 2),
                    unpack_reg(word, 3),
                    unpack_reg(word, 4),
                ],
                func: (o - OP_CUSTOM_BASE) as u8,
            },
            OP_PREDICATE => Instruction::Predicate {
                rs: unpack_reg(word, 0),
            },
            OP_LLD => Instruction::LocalLoad {
                rd: unpack_reg(word, 0),
                rs_addr: unpack_reg(word, 1),
                base: imm16,
            },
            OP_LST => Instruction::LocalStore {
                rs_data: unpack_reg(word, 0),
                rs_addr: unpack_reg(word, 1),
                base: imm16,
            },
            OP_GLD => Instruction::GlobalLoad {
                rd: unpack_reg(word, 0),
                rs_addr: [
                    unpack_reg(word, 1),
                    unpack_reg(word, 2),
                    unpack_reg(word, 3),
                ],
            },
            OP_GST => Instruction::GlobalStore {
                rs_data: unpack_reg(word, 0),
                rs_addr: [
                    unpack_reg(word, 1),
                    unpack_reg(word, 2),
                    unpack_reg(word, 3),
                ],
            },
            OP_SEND => Instruction::Send {
                rd_remote: unpack_reg(word, 0),
                rs: unpack_reg(word, 1),
                target: CoreId {
                    x: ((word >> (2 * R_BITS)) & 0x3f) as u8,
                    y: ((word >> (2 * R_BITS + 6)) & 0x3f) as u8,
                },
            },
            OP_EXPECT => Instruction::Expect {
                rs1: unpack_reg(word, 0),
                rs2: unpack_reg(word, 1),
                eid: imm16,
            },
            _ => return Err(DecodeError { word }),
        })
    }
}
