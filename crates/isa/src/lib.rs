//! The Manticore machine ISA.
//!
//! This crate defines the contract between the compiler and the machine:
//! the 16-bit instruction set (§4.2 of the paper), the machine configuration
//! (grid geometry, memory sizes, pipeline/NoC latencies), and the program
//! binary format the bootloader streams into the cores' instruction
//! memories.
//!
//! Unconventional, RTL-simulation-specific aspects preserved from the paper:
//!
//! - a 16-bit datapath with a 2048×17 register file (16 data bits plus a
//!   carry/overflow bit used by wide-arithmetic chains);
//! - 32 programmable *custom functions* per core — 4-input, 16-lane-wide
//!   truth-table instructions that collapse chains of bitwise logic;
//! - `Expect`, which raises a host exception when two registers differ
//!   (the basis of `$display`, `$finish`, and assertions);
//! - `Send`, the only inter-core communication primitive: it asks a remote
//!   core to update one of its registers at the end of the virtual cycle;
//! - predicated local/global stores and *privileged* global memory access
//!   that stalls the whole grid (the global-stall clock-gating mechanism).

pub mod asm;
pub mod binary;
pub mod config;
pub mod exception;
pub mod instr;

pub use asm::disassemble;
pub use binary::{Binary, CoreImage};
pub use config::{CacheConfig, MachineConfig};
pub use exception::{ExceptionDescriptor, ExceptionId, ExceptionKind};
pub use instr::{AluOp, CoreId, DecodeError, Instruction, Reg};

#[cfg(test)]
mod tests;
