//! Exception descriptors: how the host services `Expect` exceptions.
//!
//! The paper translates `$display`, `$finish`, and assertions into `EXPECT`
//! instructions whose exception ids index a host-side table (Appendix A.3.2).
//! When an exception fires the grid stalls, the host inspects state, acts,
//! and resumes. The descriptor table below is the compiler→runtime metadata
//! describing each id.

use crate::instr::Reg;

/// Index into the binary's exception table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExceptionId(pub u16);

/// What the host does when the exception fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExceptionKind {
    /// Render the format string (each `{}` consumes one argument) and
    /// resume. Argument values live in registers of the raising core,
    /// least-significant word first.
    ///
    /// The paper's runtime flushes the cache and reads argument values from
    /// DRAM; our host reads the core's register file directly — the host
    /// has full access to machine state either way, this just skips the
    /// DRAM round-trip.
    Display {
        /// Format string with `{}` placeholders.
        format: String,
        /// Per-argument register lists (words, LSW first) and bit width.
        args: Vec<(Vec<Reg>, usize)>,
    },
    /// Report an assertion failure and abort the simulation.
    AssertFail {
        /// Human-readable assertion message.
        message: String,
    },
    /// Terminate the simulation successfully (`$finish`).
    Finish,
}

/// One entry of the exception table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionDescriptor {
    /// The id `Expect` instructions carry.
    pub id: ExceptionId,
    /// Host action.
    pub kind: ExceptionKind,
}
