//! Unit + property tests for the ISA: ALU semantics, encoding round-trips,
//! binary serialization, configuration math.

use manticore_util::SmallRng;

use crate::{
    AluOp, Binary, CoreId, CoreImage, ExceptionDescriptor, ExceptionId, ExceptionKind, Instruction,
    MachineConfig, Reg,
};

#[test]
fn alu_add_carry_out() {
    assert_eq!(AluOp::Add.eval(0xffff, 1), (0, true));
    assert_eq!(AluOp::Add.eval(1, 1), (2, false));
}

#[test]
fn alu_sub_no_borrow_flag() {
    assert_eq!(AluOp::Sub.eval(5, 3), (2, true)); // no borrow
    assert_eq!(AluOp::Sub.eval(3, 5), (0xfffe, false)); // borrowed
}

#[test]
fn alu_shifts_saturate() {
    assert_eq!(AluOp::Sll.eval(0xffff, 16).0, 0);
    assert_eq!(AluOp::Srl.eval(0xffff, 20).0, 0);
    assert_eq!(AluOp::Sra.eval(0x8000, 100).0, 0xffff);
    assert_eq!(AluOp::Sra.eval(0x7fff, 100).0, 0);
}

#[test]
fn alu_compares() {
    assert_eq!(AluOp::Seq.eval(7, 7).0, 1);
    assert_eq!(AluOp::Seq.eval(7, 8).0, 0);
    assert_eq!(AluOp::Sltu.eval(1, 2).0, 1);
    assert_eq!(AluOp::Sltu.eval(0xffff, 0).0, 0);
    assert_eq!(AluOp::Slts.eval(0xffff, 0).0, 1); // -1 < 0
    assert_eq!(AluOp::Slts.eval(0, 0xffff).0, 0);
}

#[test]
fn alu_mul_parts() {
    let a = 0x1234u16;
    let b = 0x5678u16;
    let full = a as u32 * b as u32;
    assert_eq!(AluOp::Mul.eval(a, b).0, full as u16);
    assert_eq!(AluOp::Mulh.eval(a, b).0, (full >> 16) as u16);
}

#[test]
fn privileged_classification() {
    assert!(Instruction::Expect {
        rs1: Reg(1),
        rs2: Reg(2),
        eid: 0
    }
    .is_privileged());
    assert!(Instruction::GlobalLoad {
        rd: Reg(1),
        rs_addr: [Reg(2), Reg(3), Reg(4)]
    }
    .is_privileged());
    assert!(!Instruction::Send {
        target: CoreId::new(1, 1),
        rd_remote: Reg(5),
        rs: Reg(6)
    }
    .is_privileged());
}

#[test]
fn dest_and_sources() {
    let i = Instruction::AddCarry {
        rd: Reg(10),
        rs1: Reg(11),
        rs2: Reg(12),
        rs_carry: Reg(13),
    };
    assert_eq!(i.dest(), Some(Reg(10)));
    assert_eq!(i.sources(), vec![Reg(11), Reg(12), Reg(13)]);
    assert_eq!(Instruction::Nop.dest(), None);
}

fn sample_instructions() -> Vec<Instruction> {
    let r = Reg;
    let mut v = vec![
        Instruction::Nop,
        Instruction::Set {
            rd: r(2047),
            imm: 0xffff,
        },
        Instruction::AddCarry {
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
            rs_carry: r(4),
        },
        Instruction::SubBorrow {
            rd: r(5),
            rs1: r(6),
            rs2: r(7),
            rs_borrow: r(8),
        },
        Instruction::Mux {
            rd: r(9),
            rs_sel: r(10),
            rs1: r(11),
            rs2: r(12),
        },
        Instruction::Slice {
            rd: r(13),
            rs: r(14),
            offset: 15,
            width: 16,
        },
        Instruction::Custom {
            rd: r(15),
            func: 31,
            rs: [r(16), r(17), r(18), r(19)],
        },
        Instruction::Predicate { rs: r(20) },
        Instruction::LocalLoad {
            rd: r(21),
            rs_addr: r(22),
            base: 16383,
        },
        Instruction::LocalStore {
            rs_data: r(23),
            rs_addr: r(24),
            base: 1,
        },
        Instruction::GlobalLoad {
            rd: r(25),
            rs_addr: [r(26), r(27), r(28)],
        },
        Instruction::GlobalStore {
            rs_data: r(29),
            rs_addr: [r(30), r(31), r(32)],
        },
        Instruction::Send {
            target: CoreId::new(14, 14),
            rd_remote: r(33),
            rs: r(34),
        },
        Instruction::Expect {
            rs1: r(35),
            rs2: r(36),
            eid: 999,
        },
    ];
    for op in AluOp::ALL {
        v.push(Instruction::Alu {
            op,
            rd: r(100),
            rs1: r(101),
            rs2: r(102),
        });
    }
    v
}

#[test]
fn encode_decode_roundtrip() {
    for i in sample_instructions() {
        let encoded = i.encode();
        let decoded = Instruction::decode(encoded).unwrap();
        assert_eq!(decoded, i, "roundtrip failed for {i:?}");
    }
}

#[test]
fn decode_rejects_bad_opcode() {
    assert!(Instruction::decode(0x3fu64 << 58).is_err());
}

#[test]
fn binary_roundtrip() {
    let binary = Binary {
        grid_width: 2,
        grid_height: 2,
        vcycle_len: 64,
        cores: vec![
            CoreImage {
                core: CoreId::new(0, 0),
                body: sample_instructions(),
                epilogue_len: 3,
                custom_functions: vec![[0xcafe; 16], [0x8001; 16]],
                init_regs: vec![(Reg(0), 0), (Reg(1), 42)],
                init_scratch: vec![(100, 7)],
            },
            CoreImage::empty(CoreId::new(1, 1)),
        ],
        exceptions: vec![
            ExceptionDescriptor {
                id: ExceptionId(0),
                kind: ExceptionKind::Display {
                    format: "count = {}".into(),
                    args: vec![(vec![Reg(4), Reg(5)], 32)],
                },
            },
            ExceptionDescriptor {
                id: ExceptionId(1),
                kind: ExceptionKind::AssertFail {
                    message: "boom".into(),
                },
            },
            ExceptionDescriptor {
                id: ExceptionId(2),
                kind: ExceptionKind::Finish,
            },
        ],
        init_dram: vec![(1 << 40, 0xbeef)],
    };
    let bytes = binary.to_bytes();
    let restored = Binary::from_bytes(&bytes).unwrap();
    assert_eq!(restored, binary);
}

#[test]
fn binary_rejects_garbage() {
    assert!(Binary::from_bytes(b"NOTMAGIC____").is_err());
    assert!(Binary::from_bytes(&[]).is_err());
}

#[test]
fn torus_hop_counts() {
    let cfg = MachineConfig::with_grid(4, 4);
    // unidirectional: wrapping costs the long way around
    assert_eq!(cfg.hops(CoreId::new(0, 0), CoreId::new(1, 0)), 1);
    assert_eq!(cfg.hops(CoreId::new(1, 0), CoreId::new(0, 0)), 3);
    assert_eq!(cfg.hops(CoreId::new(0, 0), CoreId::new(3, 3)), 6);
    assert_eq!(cfg.hops(CoreId::new(2, 2), CoreId::new(2, 2)), 0);
}

#[test]
fn simulation_rate() {
    let cfg = MachineConfig::default();
    let khz = cfg.simulation_rate_khz(1700);
    assert!((khz - 279.4).abs() < 1.0, "got {khz}");
}

#[test]
fn prop_alu_add_matches_u32() {
    let mut rng = SmallRng::seed_from_u64(0x11);
    for _ in 0..512 {
        let a = rng.next_u64() as u16;
        let b = rng.next_u64() as u16;
        let (r, c) = AluOp::Add.eval(a, b);
        let full = a as u32 + b as u32;
        assert_eq!(r, full as u16);
        assert_eq!(c, full > 0xffff);
    }
}

#[test]
fn prop_set_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x12);
    for _ in 0..512 {
        let rd = rng.gen_range(0..2048) as u16;
        let imm = rng.next_u64() as u16;
        let i = Instruction::Set { rd: Reg(rd), imm };
        assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
    }
}

#[test]
fn prop_send_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x13);
    for _ in 0..512 {
        let x = rng.gen_range(0..16) as u8;
        let y = rng.gen_range(0..16) as u8;
        let rd = rng.gen_range(0..2048) as u16;
        let rs = rng.gen_range(0..2048) as u16;
        let i = Instruction::Send {
            target: CoreId::new(x, y),
            rd_remote: Reg(rd),
            rs: Reg(rs),
        };
        assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
    }
}
