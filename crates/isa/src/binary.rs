//! The loadable program binary.
//!
//! A [`Binary`] is what the compiler emits and the machine's bootloader
//! consumes: per-core instruction streams plus boot-time state (register
//! initialization, scratchpad/DRAM images, custom-function truth tables)
//! and the global virtual-cycle framing (Vcycle length, per-core epilogue
//! sizes — the paper's `EPILOGUE_LENGTH` / `SLEEP_LENGTH` / `COUNT_DOWN`
//! footer words, §A.3.1).
//!
//! [`Binary::to_bytes`]/[`Binary::from_bytes`] give the byte-stream form the
//! paper's runtime would copy into FPGA DRAM for the hardware bootloader.

use crate::exception::{ExceptionDescriptor, ExceptionId, ExceptionKind};
use crate::instr::{CoreId, Instruction, Reg};

/// The program image for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreImage {
    /// Which core this image loads into.
    pub core: CoreId,
    /// The instruction body executed each Vcycle (excludes the message
    /// epilogue region, which the NoC fills at runtime).
    pub body: Vec<Instruction>,
    /// Number of messages this core receives per Vcycle; the bootloader
    /// reserves this many instruction slots after the body.
    pub epilogue_len: u32,
    /// Custom-function truth tables, indexed by `Custom.func`. Each
    /// function is 256 bits: one 16-entry truth table *per bit lane*
    /// (§5.1: "we extend this idea to a 16-bit truth table using
    /// 16 × 16 = 256 bits of memory per function"), which lets constant
    /// operands be absorbed into the function.
    pub custom_functions: Vec<[u16; 16]>,
    /// Boot-time register initialization (constants, state init values).
    pub init_regs: Vec<(Reg, u16)>,
    /// Boot-time scratchpad initialization, sparse `(address, value)`.
    pub init_scratch: Vec<(u16, u16)>,
}

impl CoreImage {
    /// An empty image for `core` (all-NOP body).
    pub fn empty(core: CoreId) -> Self {
        CoreImage {
            core,
            body: Vec::new(),
            epilogue_len: 0,
            custom_functions: Vec::new(),
            init_regs: Vec::new(),
            init_scratch: Vec::new(),
        }
    }

    /// Instruction-memory footprint: body plus reserved epilogue slots.
    pub fn imem_footprint(&self) -> usize {
        self.body.len() + self.epilogue_len as usize
    }
}

/// A complete loadable program.
#[derive(Debug, Clone, PartialEq)]
pub struct Binary {
    /// Grid width the program was compiled for.
    pub grid_width: u32,
    /// Grid height the program was compiled for.
    pub grid_height: u32,
    /// Machine cycles per virtual cycle (all cores restart their program
    /// in lockstep every `vcycle_len` cycles).
    pub vcycle_len: u32,
    /// Per-core images. Cores not listed idle (all NOPs).
    pub cores: Vec<CoreImage>,
    /// Exception table for the host runtime.
    pub exceptions: Vec<ExceptionDescriptor>,
    /// Boot-time DRAM image, sparse `(word address, value)` (for RTL
    /// memories placed in global memory).
    pub init_dram: Vec<(u64, u16)>,
}

impl Binary {
    /// Total instructions across all cores (body only, excluding NOP
    /// padding that may be added at load).
    pub fn total_instructions(&self) -> usize {
        self.cores.iter().map(|c| c.body.len()).sum()
    }

    /// Serializes to the byte stream the bootloader consumes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend(b"MANTICOR"); // magic
        push_u32(&mut out, 1); // version
        push_u32(&mut out, self.grid_width);
        push_u32(&mut out, self.grid_height);
        push_u32(&mut out, self.vcycle_len);
        push_u32(&mut out, self.cores.len() as u32);
        for c in &self.cores {
            out.push(c.core.x);
            out.push(c.core.y);
            push_u32(&mut out, c.body.len() as u32);
            for i in &c.body {
                push_u64(&mut out, i.encode());
            }
            push_u32(&mut out, c.epilogue_len);
            push_u32(&mut out, c.custom_functions.len() as u32);
            for t in &c.custom_functions {
                for &lane in t {
                    push_u16(&mut out, lane);
                }
            }
            push_u32(&mut out, c.init_regs.len() as u32);
            for &(r, v) in &c.init_regs {
                push_u16(&mut out, r.0);
                push_u16(&mut out, v);
            }
            push_u32(&mut out, c.init_scratch.len() as u32);
            for &(a, v) in &c.init_scratch {
                push_u16(&mut out, a);
                push_u16(&mut out, v);
            }
        }
        push_u32(&mut out, self.exceptions.len() as u32);
        for e in &self.exceptions {
            push_u16(&mut out, e.id.0);
            match &e.kind {
                ExceptionKind::Display { format, args } => {
                    out.push(0);
                    push_str(&mut out, format);
                    push_u32(&mut out, args.len() as u32);
                    for (regs, width) in args {
                        push_u32(&mut out, *width as u32);
                        push_u32(&mut out, regs.len() as u32);
                        for r in regs {
                            push_u16(&mut out, r.0);
                        }
                    }
                }
                ExceptionKind::AssertFail { message } => {
                    out.push(1);
                    push_str(&mut out, message);
                }
                ExceptionKind::Finish => out.push(2),
            }
        }
        push_u32(&mut out, self.init_dram.len() as u32);
        for &(a, v) in &self.init_dram {
            push_u64(&mut out, a);
            push_u16(&mut out, v);
        }
        out
    }

    /// Deserializes a byte stream produced by [`Binary::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Binary, String> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != b"MANTICOR" {
            return Err("bad magic".into());
        }
        let version = r.u32()?;
        if version != 1 {
            return Err(format!("unsupported binary version {version}"));
        }
        let grid_width = r.u32()?;
        let grid_height = r.u32()?;
        let vcycle_len = r.u32()?;
        let ncores = r.u32()? as usize;
        let mut cores = Vec::with_capacity(ncores);
        for _ in 0..ncores {
            let x = r.u8()?;
            let y = r.u8()?;
            let nbody = r.u32()? as usize;
            let mut body = Vec::with_capacity(nbody);
            for _ in 0..nbody {
                let w = r.u64()?;
                body.push(Instruction::decode(w).map_err(|e| e.to_string())?);
            }
            let epilogue_len = r.u32()?;
            let ncf = r.u32()? as usize;
            let mut custom_functions = Vec::with_capacity(ncf);
            for _ in 0..ncf {
                let mut t = [0u16; 16];
                for lane in &mut t {
                    *lane = r.u16()?;
                }
                custom_functions.push(t);
            }
            let nregs = r.u32()? as usize;
            let mut init_regs = Vec::with_capacity(nregs);
            for _ in 0..nregs {
                init_regs.push((Reg(r.u16()?), r.u16()?));
            }
            let nscr = r.u32()? as usize;
            let mut init_scratch = Vec::with_capacity(nscr);
            for _ in 0..nscr {
                init_scratch.push((r.u16()?, r.u16()?));
            }
            cores.push(CoreImage {
                core: CoreId::new(x, y),
                body,
                epilogue_len,
                custom_functions,
                init_regs,
                init_scratch,
            });
        }
        let nexc = r.u32()? as usize;
        let mut exceptions = Vec::with_capacity(nexc);
        for _ in 0..nexc {
            let id = ExceptionId(r.u16()?);
            let kind = match r.u8()? {
                0 => {
                    let format = r.string()?;
                    let nargs = r.u32()? as usize;
                    let mut args = Vec::with_capacity(nargs);
                    for _ in 0..nargs {
                        let width = r.u32()? as usize;
                        let nregs = r.u32()? as usize;
                        let mut regs = Vec::with_capacity(nregs);
                        for _ in 0..nregs {
                            regs.push(Reg(r.u16()?));
                        }
                        args.push((regs, width));
                    }
                    ExceptionKind::Display { format, args }
                }
                1 => ExceptionKind::AssertFail {
                    message: r.string()?,
                },
                2 => ExceptionKind::Finish,
                k => return Err(format!("unknown exception kind {k}")),
            };
            exceptions.push(ExceptionDescriptor { id, kind });
        }
        let ndram = r.u32()? as usize;
        let mut init_dram = Vec::with_capacity(ndram);
        for _ in 0..ndram {
            init_dram.push((r.u64()?, r.u16()?));
        }
        Ok(Binary {
            grid_width,
            grid_height,
            vcycle_len,
            cores,
            exceptions,
            init_dram,
        })
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend(v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend(v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend(v.to_le_bytes());
}
fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("unexpected end of binary".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| e.to_string())
    }
}
