//! Machine configuration: grid geometry, memory sizes, latencies.

/// Cache + DRAM timing model for the privileged core's global memory path.
///
/// The paper's cache is 128 KiB, direct-mapped, write-allocate, write-back,
/// built from 4 URAMs, backed by one DRAM bank. Every access — hit or miss —
/// stalls the *entire grid* (the global-stall clock-gating mechanism, §5.3),
/// so from the compiler's perspective global accesses have fixed latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total cache capacity in 16-bit words (default 64 Ki words = 128 KiB).
    pub capacity_words: usize,
    /// Cache line length in words.
    pub line_words: usize,
    /// Grid-stall cycles charged on a hit (cache pipeline + clock
    /// gate/ungate round trip).
    pub hit_stall: u64,
    /// Additional stall cycles for a line fill from DRAM.
    pub miss_stall: u64,
    /// Additional stall cycles to write back a dirty victim line.
    pub writeback_stall: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_words: 64 * 1024,
            line_words: 32,
            hit_stall: 10,
            miss_stall: 60,
            writeback_stall: 40,
        }
    }
}

impl CacheConfig {
    /// Number of lines in the cache.
    pub fn num_lines(&self) -> usize {
        self.capacity_words / self.line_words
    }
}

/// Full machine configuration.
///
/// Defaults reproduce the paper's 225-core prototype: a 15×15 grid at
/// 475 MHz, 4096-entry instruction memories, 2048-entry register files,
/// 16384×16 scratchpads, 32 custom functions per core.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Grid width (cores per row).
    pub grid_width: usize,
    /// Grid height (rows).
    pub grid_height: usize,
    /// Instruction memory capacity per core (paper: 4096×64 URAM).
    pub imem_capacity: usize,
    /// Register file entries per core (paper: 2048×17 BRAM).
    pub regfile_size: usize,
    /// Scratchpad words per core (paper: 16384×16, one URAM reshaped).
    pub scratch_words: usize,
    /// Custom functions per core (paper: 32×256-bit LUTRAM).
    pub num_custom_functions: usize,
    /// Cycles after which a written register becomes readable.
    ///
    /// Models the 14-stage pipeline without forwarding: a consumer issued
    /// fewer than this many cycles after the producer would read a stale
    /// value. The compiler's list scheduler enforces this distance; the
    /// machine checks it.
    pub hazard_latency: usize,
    /// NoC cycles per hop (switch traversal).
    pub hop_latency: usize,
    /// Cycles from `Send` issue to the message entering the first link.
    pub injection_latency: usize,
    /// Compute-clock frequency in Hz (for simulation-rate reporting).
    pub clock_hz: f64,
    /// Global memory path timing.
    pub cache: CacheConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            grid_width: 15,
            grid_height: 15,
            imem_capacity: 4096,
            regfile_size: 2048,
            scratch_words: 16384,
            num_custom_functions: 32,
            hazard_latency: 11,
            hop_latency: 1,
            injection_latency: 2,
            clock_hz: 475.0e6,
            cache: CacheConfig::default(),
        }
    }
}

impl MachineConfig {
    /// A configuration with the default per-core parameters and the given
    /// grid size.
    pub fn with_grid(width: usize, height: usize) -> Self {
        MachineConfig {
            grid_width: width,
            grid_height: height,
            ..Default::default()
        }
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.grid_width * self.grid_height
    }

    /// Converts a Vcycle length (machine cycles per simulated RTL cycle)
    /// into a simulation rate in kHz, the unit of the paper's Table 3.
    pub fn simulation_rate_khz(&self, vcycle_len: u64) -> f64 {
        if vcycle_len == 0 {
            return f64::INFINITY;
        }
        self.clock_hz / vcycle_len as f64 / 1e3
    }

    /// Number of hops a message travels on the unidirectional 2D torus with
    /// dimension-ordered (X then Y) routing.
    pub fn hops(&self, from: super::CoreId, to: super::CoreId) -> usize {
        let dx = (to.x as usize + self.grid_width - from.x as usize) % self.grid_width;
        let dy = (to.y as usize + self.grid_height - from.y as usize) % self.grid_height;
        dx + dy
    }
}
