//! Micro-benchmarks over the core engines: per-cycle throughput of the
//! reference evaluator, the baseline tape, and the machine model (serial
//! and sharded-parallel), plus end-to-end compile latency — the raw
//! throughputs behind Table 3.
//!
//! Self-timed (`harness = false`): the container has no registry access,
//! so this is a plain median-of-samples harness instead of criterion.
//!
//! Run: `cargo bench -p manticore-bench`

use std::time::Instant;

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::{ExecMode, Machine};
use manticore::netlist::eval::Evaluator;
use manticore::refsim::{SerialSim, Tape};
use manticore::workloads;

/// The fast and slow extremes of the suite keep bench time in check.
const BENCH_WORKLOADS: [&str; 3] = ["jpeg", "blur", "cgra"];

/// Median nanoseconds per call over `samples` batches of `iters` calls.
fn time_ns(samples: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.total_cmp(b));
    per_call[per_call.len() / 2]
}

fn report(group: &str, name: &str, ns: f64) {
    println!("{group:>18}/{name:<8} {:>12.0} ns/iter", ns);
}

fn bench_evaluator() {
    for name in BENCH_WORKLOADS {
        let w = workloads::by_name(name).unwrap();
        let mut sim = Evaluator::new(&w.netlist);
        let ns = time_ns(7, 50, || {
            sim.step();
        });
        report("evaluator_step", name, ns);
    }
}

fn bench_tape_serial() {
    for name in BENCH_WORKLOADS {
        let w = workloads::by_name(name).unwrap();
        let tape = Tape::compile(&w.netlist).unwrap();
        let mut sim = SerialSim::new(&tape);
        let ns = time_ns(7, 200, || {
            sim.step();
        });
        report("tape_serial_step", name, ns);
    }
}

fn bench_machine_vcycle() {
    // Long-horizon variants so $finish never fires mid-measurement.
    let far = 1u64 << 40;
    let variants: [(&str, manticore::netlist::Netlist); 3] = [
        ("jpeg", workloads::jpeg_sized(far)),
        ("blur", workloads::blur_sized(64, 4, far)),
        ("cgra", workloads::cgra_sized(8, 8, far)),
    ];
    for (name, netlist) in variants {
        let config = MachineConfig::with_grid(4, 4);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let out = compile(&netlist, &options).unwrap();
        for (mode, label) in [
            (ExecMode::Serial, "machine_vcycle"),
            (ExecMode::Parallel { shards: 4 }, "machine_vcycle_p4"),
        ] {
            let mut machine = Machine::load(config.clone(), &out.binary).unwrap();
            machine.set_exec_mode(mode);
            let ns = time_ns(5, 64, || {
                machine.run_vcycles(1).unwrap();
            });
            report(label, name, ns);
        }
    }
}

fn bench_compile() {
    for name in ["jpeg", "blur"] {
        let w = workloads::by_name(name).unwrap();
        let options = CompileOptions {
            config: MachineConfig::with_grid(15, 15),
            ..Default::default()
        };
        let ns = time_ns(5, 1, || {
            compile(&w.netlist, &options).unwrap();
        });
        report("compile", name, ns);
    }
}

fn main() {
    // `cargo bench` passes --bench (and possibly filters); ignore them.
    println!("# paper_benches (self-timed, median of samples)\n");
    bench_evaluator();
    bench_tape_serial();
    bench_machine_vcycle();
    bench_compile();
}
