//! Criterion micro-benchmarks over the core engines: per-cycle throughput
//! of the reference evaluator, the baseline tape, and the machine model,
//! plus end-to-end compile latency — the raw throughputs behind Table 3.
//!
//! Run: `cargo bench -p manticore-bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::Machine;
use manticore::netlist::eval::Evaluator;
use manticore::refsim::{SerialSim, Tape};
use manticore::workloads;

/// The fast and slow extremes of the suite keep bench time in check.
const BENCH_WORKLOADS: [&str; 3] = ["jpeg", "blur", "cgra"];

fn bench_evaluator(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluator_step");
    for name in BENCH_WORKLOADS {
        let w = workloads::by_name(name).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            let mut sim = Evaluator::new(&w.netlist);
            b.iter(|| sim.step());
        });
    }
    g.finish();
}

fn bench_tape_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("tape_serial_step");
    for name in BENCH_WORKLOADS {
        let w = workloads::by_name(name).unwrap();
        let tape = Tape::compile(&w.netlist).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &tape, |b, tape| {
            let mut sim = SerialSim::new(tape);
            b.iter(|| sim.step());
        });
    }
    g.finish();
}

fn bench_machine_vcycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_vcycle");
    g.sample_size(10);
    // Long-horizon variants so $finish never fires mid-measurement.
    let far = 1u64 << 40;
    let variants: [(&str, manticore::netlist::Netlist); 3] = [
        ("jpeg", workloads::jpeg_sized(far)),
        ("blur", workloads::blur_sized(64, 4, far)),
        ("cgra", workloads::cgra_sized(8, 8, far)),
    ];
    for (name, netlist) in variants {
        let config = MachineConfig::with_grid(4, 4);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let out = compile(&netlist, &options).unwrap();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut machine = Machine::load(config.clone(), &out.binary).unwrap();
            b.iter(|| machine.run_vcycles(1).unwrap());
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    for name in ["jpeg", "blur"] {
        let w = workloads::by_name(name).unwrap();
        let options = CompileOptions {
            config: MachineConfig::with_grid(15, 15),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| compile(&w.netlist, &options).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_evaluator,
    bench_tape_serial,
    bench_machine_vcycle,
    bench_compile
);
criterion_main!(benches);
