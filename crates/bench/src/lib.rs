//! Shared infrastructure for the experiment harness: the place-and-route
//! frequency model (Table 1 / Table 7), the Azure cost model (Tables 5–6),
//! and measurement helpers used by the per-figure binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/`; see DESIGN.md's experiment index for the mapping.

use std::time::Instant;

use manticore::compiler::{compile, CompileOptions, CompileOutput, PartitionStrategy};
use manticore::isa::MachineConfig;
use manticore::netlist::Netlist;

// ---------------------------------------------------------------------
// Table 1 / Table 7: physical-design models
// ---------------------------------------------------------------------

/// Analytical FPGA frequency model for the U200 (substitute for Vivado
/// place-and-route — see DESIGN.md).
///
/// Mechanism reproduced from §7.2/§A.5: below ~160 cores the design fits
/// the top SLRs untouched by the PCIe shell and closes near 500 MHz.
/// Beyond that, automatic floorplanning must route around the C-shaped
/// user region and collapses; guided floorplanning (cores split across
/// SLRs, switches pinned to the central SLR) recovers most of the
/// frequency.
pub fn fmax_mhz(grid: usize, guided: bool) -> f64 {
    let cores = (grid * grid) as f64;
    if !guided {
        match cores as usize {
            0..=100 => 500.0 - (cores / 100.0) * 15.0, // 8x8=64 -> ~490, table says 500
            101..=160 => 485.0 - ((cores - 100.0) / 60.0) * 5.0,
            161..=230 => 480.0 - ((cores - 144.0) / 81.0) * 85.0, // 15x15 -> ~395
            _ => 180.0,                                           // shell congestion cliff (16x16)
        }
        .max(100.0)
    } else {
        // Guided floorplanning: flat near 500 until SLR capacity bites.
        match cores as usize {
            0..=144 => 500.0,
            145..=225 => 500.0 - ((cores - 144.0) / 81.0) * 25.0, // 15x15 -> 475
            _ => 450.0,
        }
    }
}

/// Table-1 exact anchor points `(grid, auto MHz, guided MHz)`; the paper's
/// measured values, reproduced by [`fmax_mhz`] within a few percent.
pub const TABLE1_PAPER: [(usize, f64, Option<f64>); 5] = [
    (8, 500.0, None),
    (10, 485.0, None),
    (12, 480.0, Some(500.0)),
    (15, 395.0, Some(475.0)),
    (16, 180.0, Some(450.0)),
];

/// Per-core FPGA resource utilization (Table 7) — the paper's measured
/// values; URAMs are the binding resource (2 per core of 800 on the U200,
/// minus 4 for the cache → 398 cores max).
#[derive(Debug, Clone, Copy)]
pub struct CoreResources {
    /// Look-up tables.
    pub lut: u32,
    /// LUTRAMs (custom function unit).
    pub lutram: u32,
    /// Flip-flops.
    pub ff: u32,
    /// 4.5 KiB block RAMs (register file).
    pub bram: u32,
    /// 36 KiB ultra RAMs (instruction memory + scratchpad).
    pub uram: u32,
    /// DSP slices (the ALU).
    pub dsp: u32,
    /// Shift-register LUTs.
    pub srl: u32,
}

/// The paper's Table 7 numbers.
pub const CORE_RESOURCES: CoreResources = CoreResources {
    lut: 545,
    lutram: 128,
    ff: 1358,
    bram: 4,
    uram: 2,
    dsp: 1,
    srl: 102,
};

/// Maximum cores on a U200: 800 URAMs, 2 per core, 4 reserved for the
/// cache (§A.7).
pub fn max_cores_u200() -> usize {
    (800 - 4) / 2
}

// ---------------------------------------------------------------------
// Tables 5 & 6: Azure cost model
// ---------------------------------------------------------------------

/// An Azure instance for the cost analysis (Table 5).
#[derive(Debug, Clone, Copy)]
pub struct Instance {
    /// Instance family / role label.
    pub name: &'static str,
    /// USD per hour.
    pub dollars_per_hour: f64,
}

/// The paper's Table 5 pricing.
pub const INSTANCES: [Instance; 4] = [
    Instance {
        name: "D2 v3 (serial)",
        dollars_per_hour: 0.115,
    },
    Instance {
        name: "D16 v4 (multithreaded)",
        dollars_per_hour: 0.92,
    },
    Instance {
        name: "HB120rs v3 (multithreaded)",
        dollars_per_hour: 4.68,
    },
    Instance {
        name: "NP10s (Manticore)",
        dollars_per_hour: 2.145,
    },
];

/// Hours (rounded up, as billed) and dollars to simulate `cycles` RTL
/// cycles at `rate_khz`.
pub fn cost(cycles: f64, rate_khz: f64, dollars_per_hour: f64) -> (f64, f64) {
    let hours = cycles / (rate_khz * 1e3) / 3600.0;
    let billed = hours.ceil().max(1.0);
    (hours, billed * dollars_per_hour)
}

// ---------------------------------------------------------------------
// Measurement helpers
// ---------------------------------------------------------------------

/// Compiles a workload for Manticore with default options at `grid`.
///
/// # Panics
///
/// Panics if compilation fails (harness-level fatal).
pub fn compile_for_grid(
    netlist: &Netlist,
    grid: usize,
    strategy: PartitionStrategy,
) -> CompileOutput {
    let options = CompileOptions {
        config: MachineConfig::with_grid(grid, grid),
        partition: strategy,
        ..Default::default()
    };
    compile(netlist, &options).expect("workload must compile")
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Minimal JSON emission for the `--json` outputs of the experiment
/// binaries (the workspace deliberately has no external dependencies, so
/// no serde). Values are escaped strings, finite numbers, or `null`.
pub mod json {
    /// A JSON value, rendered on [`Val::render`].
    pub enum Val {
        /// A string (escaped on render).
        Str(String),
        /// A number; non-finite values render as `null`.
        Num(f64),
        /// An unsigned integer (exact rendering).
        Int(u64),
        /// An object of key/value pairs.
        Obj(Vec<(String, Val)>),
        /// An array of values.
        Arr(Vec<Val>),
    }

    impl Val {
        /// Builds an object from key/value pairs.
        pub fn obj(fields: Vec<(&str, Val)>) -> Val {
            Val::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// Renders to compact JSON.
        pub fn render(&self) -> String {
            match self {
                Val::Str(s) => {
                    let mut out = String::with_capacity(s.len() + 2);
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                    out
                }
                Val::Num(v) if v.is_finite() => format!("{v}"),
                Val::Num(_) => "null".into(),
                Val::Int(v) => format!("{v}"),
                Val::Obj(fields) => {
                    let parts: Vec<String> = fields
                        .iter()
                        .map(|(k, v)| format!("{}:{}", Val::Str(k.clone()).render(), v.render()))
                        .collect();
                    format!("{{{}}}", parts.join(","))
                }
                Val::Arr(items) => {
                    let parts: Vec<String> = items.iter().map(Val::render).collect();
                    format!("[{}]", parts.join(","))
                }
            }
        }
    }

    /// Writes a value to `path` as pretty-enough single-line JSON plus a
    /// trailing newline.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (harness-level fatal).
    pub fn write(path: &str, v: &Val) {
        std::fs::write(path, v.render() + "\n").expect("write json output");
    }
}

/// Parses a `--flag value` pair out of `args`, removing both tokens.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    args.remove(i);
    Some(args.remove(i))
}

/// Exits with an error if any argument survived flag parsing — a typoed
/// flag must not silently run the uncapped default configuration.
pub fn reject_unknown_args(args: &[String]) {
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        std::process::exit(2);
    }
}

/// The three machine-model engines the perf binaries sweep: the
/// position-by-position interpreter (replay off) and the two replay
/// lowerings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelEngine {
    /// Full per-position interpreter (replay disabled).
    Interpreter,
    /// Validate-once / replay-many, pre-decoded tape.
    TapeReplay,
    /// Validate-once / replay-many, fused micro-op stream.
    MicroOps,
}

impl ModelEngine {
    /// All engines, sweep order.
    pub const ALL: [ModelEngine; 3] = [
        ModelEngine::Interpreter,
        ModelEngine::TapeReplay,
        ModelEngine::MicroOps,
    ];

    /// Short column-label suffix (`""`, `"+rp"`, `"+uop"`).
    pub fn suffix(self) -> &'static str {
        match self {
            ModelEngine::Interpreter => "",
            ModelEngine::TapeReplay => "+rp",
            ModelEngine::MicroOps => "+uop",
        }
    }

    /// Configures a machine simulator to run on this engine.
    pub fn apply(self, sim: &mut manticore::ManticoreSim) {
        use manticore::machine::ReplayEngine;
        match self {
            ModelEngine::Interpreter => sim.set_replay(false),
            ModelEngine::TapeReplay => sim.set_replay_engine(ReplayEngine::Tape),
            ModelEngine::MicroOps => sim.set_replay_engine(ReplayEngine::MicroOps),
        }
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmax_model_hits_paper_anchors() {
        for (grid, auto, guided) in TABLE1_PAPER {
            let got = fmax_mhz(grid, false);
            assert!(
                (got - auto).abs() / auto < 0.10,
                "auto fmax at {grid}x{grid}: model {got}, paper {auto}"
            );
            if let Some(g) = guided {
                let got = fmax_mhz(grid, true);
                assert!(
                    (got - g).abs() / g < 0.10,
                    "guided fmax at {grid}x{grid}: model {got}, paper {g}"
                );
            }
        }
    }

    #[test]
    fn guided_always_at_least_auto() {
        for grid in 2..=20 {
            assert!(fmax_mhz(grid, true) >= fmax_mhz(grid, false) - 1.0);
        }
    }

    #[test]
    fn core_budget_matches_paper() {
        assert_eq!(max_cores_u200(), 398);
    }

    #[test]
    fn cost_model_rounds_to_billed_hours() {
        // 1B cycles at 100 kHz = 2.78h -> billed 3h.
        let (hours, dollars) = cost(1e9, 100.0, 2.0);
        assert!((hours - 2.78).abs() < 0.01);
        assert_eq!(dollars, 6.0);
        // Sub-hour runs bill one hour.
        let (_, d) = cost(1e6, 1000.0, 5.0);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn timed_measures_something() {
        let (v, secs) = timed(|| (0..100_000u64).sum::<u64>());
        assert_eq!(v, 4999950000);
        assert!(secs >= 0.0);
    }
}
