//! Table 8 + Fig. 13: compile times with the split-graph sizes (|V|, |E|)
//! and the per-pass breakdown (the paper's yss/prs/opt/prl/cf/sch bars —
//! here netlist-opt/lower/lir-opt/partition/custom-functions/schedule/
//! regalloc-emit).
//!
//! Run: `cargo run --release -p manticore-bench --bin table8_compile_times`

use manticore::compiler::PartitionStrategy;
use manticore::workloads;
use manticore_bench::{compile_for_grid, fmt, row, timed};

fn main() {
    println!("# Table 8 / Fig. 13: compilation statistics (15x15 target)\n");
    row(&[
        "bench".into(),
        "|V| split".into(),
        "|E| merged".into(),
        "nets".into(),
        "total (ms)".into(),
        "dominant pass".into(),
    ]);
    println!("|---|---|---|---|---|---|");

    let mut breakdowns = Vec::new();
    for w in workloads::all() {
        let (out, secs) = timed(|| compile_for_grid(&w.netlist, 15, PartitionStrategy::Balanced));
        let dominant = out
            .report
            .pass_times
            .iter()
            .max_by_key(|(_, d)| *d)
            .map(|(n, d)| format!("{n} ({:.0}ms)", d.as_secs_f64() * 1e3))
            .unwrap_or_default();
        row(&[
            w.name.into(),
            out.report.split.vertices.to_string(),
            out.report.split.edges.to_string(),
            w.netlist.nets().len().to_string(),
            fmt(secs * 1e3),
            dominant,
        ]);
        breakdowns.push((w.name, out.report.pass_times.clone()));
    }

    println!("\n## Fig. 13: per-pass fraction of compile time\n");
    print!("{:>8}", "bench");
    for (name, _) in &breakdowns[0].1 {
        print!(" {name:>18}");
    }
    println!();
    for (bench, passes) in &breakdowns {
        let total: f64 = passes.iter().map(|(_, d)| d.as_secs_f64()).sum();
        print!("{bench:>8}");
        for (_, d) in passes {
            print!(" {:>17.1}%", 100.0 * d.as_secs_f64() / total);
        }
        println!();
    }
    println!("\nexpected shape (paper Fig. 13): partitioning dominates compile time.");
}
