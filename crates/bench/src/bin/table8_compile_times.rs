//! Table 8 + Fig. 13: compile times with the split-graph sizes (|V|, |E|)
//! and the per-pass breakdown (the paper's yss/prs/opt/prl/cf/sch bars —
//! here netlist-opt/lower/lir-opt/partition/custom-functions/schedule/
//! regalloc-emit), plus the pass-manager thread-scaling sweep: every
//! workload is compiled at 1, 2, and 4 worker threads and the per-pass
//! wall times compared.
//!
//! The nine evaluation workloads compile for the paper's 15×15 grid; the
//! `soc` compile-stress torus compiles for the 16×16 grid whose heavy-pass
//! speedup the bench gate enforces (`scripts/bench_gate.py
//! --compile-fresh/--compile-baseline`). Per-pass IR sizes are
//! deterministic compiler outputs and are emitted per row for the gate's
//! exact comparison; wall times are measured (best of `--repeat` runs) and
//! only the speedup geomeans are gated, one-sided, so the gate never fails
//! a run for being too fast.
//!
//! Run: `cargo run --release -p manticore-bench --bin table8_compile_times
//!       [-- --json BENCH_compile.json] [--repeat N]`

use manticore::compiler::{compile, CompileOptions, CompileOutput, PartitionStrategy};
use manticore::isa::MachineConfig;
use manticore::netlist::Netlist;
use manticore::workloads;
use manticore_bench::{
    fmt,
    json::{self, Val},
    reject_unknown_args, row, take_flag,
};

/// Worker-thread sweep: 1 is the serial reference pipeline, >1 the
/// parallel pass implementations.
const THREADS: [usize; 3] = [1, 2, 4];

/// The passes the thread-scaling gate aggregates: the three the pipeline
/// parallelizes hardest and that dominate Fig. 13.
const HEAVY: [&str; 3] = ["partition", "schedule", "regalloc-emit"];

fn compile_with_threads(netlist: &Netlist, grid: usize, threads: usize) -> CompileOutput {
    let options = CompileOptions {
        config: MachineConfig::with_grid(grid, grid),
        partition: PartitionStrategy::Balanced,
        compile_threads: threads,
        ..Default::default()
    };
    compile(netlist, &options).expect("workload must compile")
}

struct Row {
    name: String,
    grid: usize,
    nets: usize,
    split_v: usize,
    split_e: usize,
    /// Pass name → deterministic IR size (identical across thread counts —
    /// asserted here, compared exactly by the gate).
    pass_sizes: Vec<(String, usize)>,
    /// Per thread count: per-pass best-of-`repeat` milliseconds, pipeline
    /// order.
    pass_ms: Vec<Vec<f64>>,
}

impl Row {
    fn total_ms(&self, ti: usize) -> f64 {
        self.pass_ms[ti].iter().sum()
    }

    fn heavy_ms(&self, ti: usize) -> f64 {
        self.pass_sizes
            .iter()
            .zip(&self.pass_ms[ti])
            .filter(|((n, _), _)| HEAVY.contains(&n.as_str()))
            .map(|(_, ms)| ms)
            .sum()
    }

    /// Geomean over the heavy passes of (serial ms / ms at `ti`).
    fn heavy_speedup(&self, ti: usize) -> f64 {
        let ratios: Vec<f64> = self
            .pass_sizes
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| HEAVY.contains(&n.as_str()))
            .map(|(pi, _)| self.pass_ms[0][pi] / self.pass_ms[ti][pi].max(1e-9))
            .collect();
        geomean(&ratios)
    }
}

fn geomean(vals: &[f64]) -> f64 {
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

fn measure(name: &str, netlist: &Netlist, grid: usize, repeat: usize) -> Row {
    let mut pass_sizes: Vec<(String, usize)> = Vec::new();
    let mut pass_ms: Vec<Vec<f64>> = Vec::new();
    let mut nets = 0;
    let mut split = (0, 0);
    for &threads in &THREADS {
        let mut best: Vec<f64> = Vec::new();
        for _ in 0..repeat {
            let out = compile_with_threads(netlist, grid, threads);
            let ms: Vec<f64> = out
                .report
                .passes
                .iter()
                .map(|p| p.duration.as_secs_f64() * 1e3)
                .collect();
            if best.is_empty() {
                best = ms;
            } else {
                for (b, m) in best.iter_mut().zip(ms) {
                    *b = b.min(m);
                }
            }
            let sizes: Vec<(String, usize)> = out
                .report
                .passes
                .iter()
                .map(|p| (p.name.to_string(), p.ir_size))
                .collect();
            if pass_sizes.is_empty() {
                pass_sizes = sizes;
                nets = netlist.nets().len();
                split = (out.report.split.vertices, out.report.split.edges);
            } else {
                assert_eq!(
                    pass_sizes, sizes,
                    "{name}: per-pass IR sizes must not depend on the thread count"
                );
            }
        }
        pass_ms.push(best);
    }
    Row {
        name: name.to_string(),
        grid,
        nets,
        split_v: split.0,
        split_e: split.1,
        pass_sizes,
        pass_ms,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_flag(&mut args, "--json");
    let repeat: usize = take_flag(&mut args, "--repeat")
        .map(|v| v.parse().expect("--repeat takes an integer"))
        .unwrap_or(2)
        .max(1);
    reject_unknown_args(&args);

    let mut rows: Vec<Row> = Vec::new();
    for w in workloads::all() {
        rows.push(measure(w.name, &w.netlist, 15, repeat));
    }
    // The compile-stress SoC at the 16×16 grid the acceptance gate targets.
    let soc = workloads::by_name("soc").expect("soc workload");
    rows.push(measure("soc", &soc.netlist, 16, repeat));

    println!("# Table 8 / Fig. 13: compilation statistics (9 workloads @15x15, soc @16x16)\n");
    row(&[
        "bench".into(),
        "|V| split".into(),
        "|E| merged".into(),
        "nets".into(),
        "total t1 (ms)".into(),
        "total t4 (ms)".into(),
        "heavy x (t4)".into(),
        "dominant pass".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|");
    for r in &rows {
        let (dom_i, dom_ms) = r.pass_ms[0]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, ms)| (i, *ms))
            .unwrap();
        row(&[
            r.name.clone(),
            r.split_v.to_string(),
            r.split_e.to_string(),
            r.nets.to_string(),
            fmt(r.total_ms(0)),
            fmt(r.total_ms(2)),
            format!("{:.2}", r.heavy_speedup(2)),
            format!("{} ({:.0}ms)", r.pass_sizes[dom_i].0, dom_ms),
        ]);
    }

    println!("\n## Fig. 13: per-pass fraction of serial compile time\n");
    print!("{:>8}", "bench");
    for (name, _) in &rows[0].pass_sizes {
        print!(" {name:>18}");
    }
    println!();
    for r in &rows {
        let total = r.total_ms(0);
        print!("{:>8}", r.name);
        for ms in &r.pass_ms[0] {
            print!(" {:>17.1}%", 100.0 * ms / total);
        }
        println!();
    }
    println!("\nexpected shape (paper Fig. 13): partitioning dominates compile time.");

    println!(
        "\n## Pass-manager thread scaling (heavy passes: {})\n",
        HEAVY.join(", ")
    );
    row(&[
        "bench".into(),
        "heavy t1 (ms)".into(),
        "heavy t2 (ms)".into(),
        "heavy t4 (ms)".into(),
        "speedup t2".into(),
        "speedup t4".into(),
    ]);
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        row(&[
            r.name.clone(),
            fmt(r.heavy_ms(0)),
            fmt(r.heavy_ms(1)),
            fmt(r.heavy_ms(2)),
            format!("{:.2}", r.heavy_speedup(1)),
            format!("{:.2}", r.heavy_speedup(2)),
        ]);
    }
    let g_t2 = geomean(&rows.iter().map(|r| r.heavy_speedup(1)).collect::<Vec<_>>());
    let g_t4 = geomean(&rows.iter().map(|r| r.heavy_speedup(2)).collect::<Vec<_>>());
    let soc_t4 = rows.last().unwrap().heavy_speedup(2);
    println!(
        "\ngeomean heavy-pass speedup: t2 {g_t2:.2}x, t4 {g_t4:.2}x; soc@16x16 t4 {soc_t4:.2}x"
    );

    if let Some(path) = json_path {
        let row_vals: Vec<Val> = rows
            .iter()
            .map(|r| {
                let passes: Vec<Val> = r
                    .pass_sizes
                    .iter()
                    .enumerate()
                    .map(|(pi, (name, size))| {
                        Val::obj(vec![
                            ("name", Val::Str(name.clone())),
                            ("ir_size", Val::Int(*size as u64)),
                            ("ms_t1", Val::Num(r.pass_ms[0][pi])),
                            ("ms_t2", Val::Num(r.pass_ms[1][pi])),
                            ("ms_t4", Val::Num(r.pass_ms[2][pi])),
                        ])
                    })
                    .collect();
                Val::obj(vec![
                    ("name", Val::Str(r.name.clone())),
                    ("grid", Val::Int(r.grid as u64)),
                    ("nets", Val::Int(r.nets as u64)),
                    ("split_v", Val::Int(r.split_v as u64)),
                    ("split_e", Val::Int(r.split_e as u64)),
                    ("passes", Val::Arr(passes)),
                    ("total_ms_t1", Val::Num(r.total_ms(0))),
                    ("total_ms_t4", Val::Num(r.total_ms(2))),
                    ("heavy_speedup_t2", Val::Num(r.heavy_speedup(1))),
                    ("heavy_speedup_t4", Val::Num(r.heavy_speedup(2))),
                ])
            })
            .collect();
        let v = Val::obj(vec![
            (
                "threads",
                Val::Arr(THREADS.iter().map(|&t| Val::Int(t as u64)).collect()),
            ),
            (
                "heavy_passes",
                Val::Arr(HEAVY.iter().map(|p| Val::Str(p.to_string())).collect()),
            ),
            ("repeat", Val::Int(repeat as u64)),
            ("rows", Val::Arr(row_vals)),
            (
                "geomean",
                Val::obj(vec![
                    ("heavy_speedup_t2", Val::Num(g_t2)),
                    ("heavy_speedup_t4", Val::Num(g_t4)),
                    ("soc_heavy_speedup_t4", Val::Num(soc_t4)),
                ]),
            ),
        ]);
        json::write(&path, &v);
        println!("\nwrote {path}");
    }
}
