//! Table 3: the headline comparison — serial and multithreaded baseline
//! simulation rates vs. Manticore's, with speedups and geomeans.
//!
//! Baselines are *measured* wall-clock rates of the Verilator-analog tape
//! simulator on this host, driven through the unified `Simulator` trait;
//! Manticore rates are `475 MHz / VCPL` on the paper's 15×15
//! configuration, the same formula the paper reports (the compiler counts
//! cycles exactly in the absence of off-chip accesses).
//!
//! Three extra columns measure *the model itself* on this host — the
//! cycle-accurate grid interpreter versus its two validate-once /
//! replay-many lowerings: the pre-decoded tape (`rp kHz`) and the fused
//! micro-op stream over structure-of-arrays state (`uop kHz`). `rp x` and
//! `uop x` are the resulting vcycles/second speedups over the
//! interpreter; results are bit-identical in every column.
//!
//! Run: `cargo run --release -p manticore-bench --bin table3_performance`
//!
//! Flags:
//! - `--json <path>` — additionally write the measurements as JSON (the
//!   committed `BENCH_table3.json` tracks the perf trajectory per PR);
//! - `--vcycles <n>` — cap both the baseline and the model measurement
//!   budget (CI smoke uses a tiny cap).

use std::sync::Arc;

use manticore::compiler::PartitionStrategy;
use manticore::isa::MachineConfig;
use manticore::sim::{Simulator, TapeSim};
use manticore::workloads;
use manticore::ManticoreSim;
use manticore_bench::{
    compile_for_grid, fmt, json::Val, reject_unknown_args, row, take_flag, ModelEngine,
};

/// Measured machine-model rate in kHz over `vcycles` Vcycles.
fn measured_model_khz(
    out: &Arc<manticore::compiler::CompileOutput>,
    config: &MachineConfig,
    engine: ModelEngine,
    vcycles: u64,
) -> Option<f64> {
    let mut sim = ManticoreSim::from_output(out.clone(), config.clone()).ok()?;
    engine.apply(&mut sim);
    sim.run_cycles(vcycles).ok()?;
    Some(sim.perf().measured_rate_khz())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_flag(&mut args, "--json");
    let vcycle_cap: Option<u64> = take_flag(&mut args, "--vcycles").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--vcycles expects an integer, got {v}");
            std::process::exit(2);
        })
    });
    reject_unknown_args(&args);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mt_threads = threads.min(8);
    println!("# Table 3: simulation performance (baseline measured on this host, {mt_threads} MT threads)\n");
    row(&[
        "bench".into(),
        "#ops/cyc".into(),
        "serial kHz".into(),
        "MT kHz".into(),
        "MT xself".into(),
        "manticore kHz".into(),
        "xS".into(),
        "xMT".into(),
        "model kHz".into(),
        "rp kHz".into(),
        "uop kHz".into(),
        "rp x".into(),
        "uop x".into(),
        "VCPL".into(),
        "cores".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|");

    let mut geo_s = 1.0f64;
    let mut geo_mt = 1.0f64;
    let mut geo_self = 1.0f64;
    let mut geo_rp = 1.0f64;
    let mut geo_uop = 1.0f64;
    let mut geo_uop_rp = 1.0f64;
    let mut n = 0u32;
    let mut n_rp = 0u32;
    let mut json_rows: Vec<Val> = Vec::new();
    for w in workloads::all() {
        let cycles = match vcycle_cap {
            Some(cap) => w.bench_cycles.min(cap),
            None => w.bench_cycles,
        };

        let mut serial = TapeSim::serial(&w.netlist).expect("tape");
        serial.run_cycles(cycles).expect("serial baseline run");
        let s_khz = serial.perf().measured_rate_khz();

        let mut par = TapeSim::parallel(&w.netlist, mt_threads, 64).expect("tape");
        par.run_cycles(cycles).expect("parallel baseline run");
        let p_khz = par.perf().measured_rate_khz();

        let out = Arc::new(compile_for_grid(
            &w.netlist,
            15,
            PartitionStrategy::Balanced,
        ));
        let config = MachineConfig::default();
        let m_khz = config.simulation_rate_khz(out.report.vcpl);

        // Measure the model itself: full interpreter vs the two replay
        // lowerings.
        let model_vcycles = cycles.min(300);
        let interp_khz = measured_model_khz(&out, &config, ModelEngine::Interpreter, model_vcycles);
        let replay_khz = measured_model_khz(&out, &config, ModelEngine::TapeReplay, model_vcycles);
        let uop_khz = measured_model_khz(&out, &config, ModelEngine::MicroOps, model_vcycles);
        let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
            (Some(r), Some(i)) if i > 0.0 => Some(r / i),
            _ => None,
        };
        let rp_x = ratio(replay_khz, interp_khz);
        let uop_x = ratio(uop_khz, interp_khz);
        let uop_rp = ratio(uop_khz, replay_khz);
        let opt = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".into());

        let xs = m_khz / s_khz;
        let xmt = m_khz / p_khz;
        let xself = p_khz / s_khz;
        geo_s *= xs;
        geo_mt *= xmt;
        geo_self *= xself;
        if let (Some(r), Some(u), Some(ur)) = (rp_x, uop_x, uop_rp) {
            geo_rp *= r;
            geo_uop *= u;
            geo_uop_rp *= ur;
            n_rp += 1;
        }
        n += 1;

        row(&[
            w.name.into(),
            serial.tape().step_size().to_string(),
            fmt(s_khz),
            fmt(p_khz),
            fmt(xself),
            fmt(m_khz),
            fmt(xs),
            fmt(xmt),
            opt(interp_khz),
            opt(replay_khz),
            opt(uop_khz),
            opt(rp_x),
            opt(uop_x),
            out.report.vcpl.to_string(),
            out.report.cores_used.to_string(),
        ]);

        let f = |v: Option<f64>| Val::Num(v.unwrap_or(f64::NAN));
        json_rows.push(Val::obj(vec![
            ("name", Val::Str(w.name.to_string())),
            ("vcpl", Val::Int(out.report.vcpl)),
            ("cores_used", Val::Int(out.report.cores_used as u64)),
            ("baseline_serial_khz", Val::Num(s_khz)),
            ("baseline_mt_khz", Val::Num(p_khz)),
            ("manticore_khz", Val::Num(m_khz)),
            ("model_vcycles", Val::Int(model_vcycles)),
            ("interp_khz", f(interp_khz)),
            ("replay_khz", f(replay_khz)),
            ("uop_khz", f(uop_khz)),
            ("replay_x", f(rp_x)),
            ("uop_x", f(uop_x)),
            ("uop_over_replay", f(uop_rp)),
        ]));
    }
    let g = |v: f64, k: u32| {
        if k == 0 {
            f64::NAN
        } else {
            v.powf(1.0 / k as f64)
        }
    };
    let gs = |v: f64, k: u32| {
        if k == 0 {
            "-".into()
        } else {
            fmt(g(v, k))
        }
    };
    println!(
        "\ngeomean speedups: xS = {}, xMT = {}, MT xself = {},",
        gs(geo_s, n),
        gs(geo_mt, n),
        gs(geo_self, n),
    );
    println!(
        "model engines vs interpreter: tape replay = {}, micro-ops = {} (uop/replay = {})",
        gs(geo_rp, n_rp),
        gs(geo_uop, n_rp),
        gs(geo_uop_rp, n_rp)
    );
    println!("\npaper anchors (225-core, 475 MHz): geomean xS 2.8-3.4, xMT 2.1-4.2;");
    println!("manticore wins everywhere except jpeg (serial Huffman chain).");

    if let Some(path) = json_path {
        let doc = Val::obj(vec![
            ("bench", Val::Str("table3_performance".into())),
            ("grid", Val::Int(15)),
            ("mt_threads", Val::Int(mt_threads as u64)),
            ("rows", Val::Arr(json_rows)),
            (
                "geomean",
                Val::obj(vec![
                    ("xs", Val::Num(g(geo_s, n))),
                    ("xmt", Val::Num(g(geo_mt, n))),
                    ("replay_vs_interp", Val::Num(g(geo_rp, n_rp))),
                    ("uop_vs_interp", Val::Num(g(geo_uop, n_rp))),
                    ("uop_vs_replay", Val::Num(g(geo_uop_rp, n_rp))),
                ]),
            ),
        ]);
        manticore_bench::json::write(&path, &doc);
        println!("\nwrote {path}");
    }
}
