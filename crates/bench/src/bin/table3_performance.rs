//! Table 3: the headline comparison — serial and multithreaded baseline
//! simulation rates vs. Manticore's, with speedups and geomeans.
//!
//! Baselines are *measured* wall-clock rates of the Verilator-analog tape
//! simulator on this host, driven through the unified `Simulator` trait;
//! Manticore rates are `475 MHz / VCPL` on the paper's 15×15
//! configuration, the same formula the paper reports (the compiler counts
//! cycles exactly in the absence of off-chip accesses).
//!
//! The two extra columns measure *the model itself* on this host — the
//! cycle-accurate grid interpreter versus its validate-once / replay-many
//! engine (`rp kHz`), which freezes the per-core schedule and delivery
//! plan after the validation Vcycle. `rp x` is the resulting
//! vcycles/second speedup; results are bit-identical.
//!
//! Run: `cargo run --release -p manticore-bench --bin table3_performance`

use std::sync::Arc;

use manticore::compiler::PartitionStrategy;
use manticore::isa::MachineConfig;
use manticore::sim::{Simulator, TapeSim};
use manticore::workloads;
use manticore::ManticoreSim;
use manticore_bench::{compile_for_grid, fmt, row};

/// Measured machine-model rate in kHz over `vcycles` Vcycles.
fn measured_model_khz(
    out: &Arc<manticore::compiler::CompileOutput>,
    config: &MachineConfig,
    replay: bool,
    vcycles: u64,
) -> Option<f64> {
    let mut sim = ManticoreSim::from_output(out.clone(), config.clone()).ok()?;
    sim.set_replay(replay);
    sim.run_cycles(vcycles).ok()?;
    Some(sim.perf().measured_rate_khz())
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mt_threads = threads.min(8);
    println!("# Table 3: simulation performance (baseline measured on this host, {mt_threads} MT threads)\n");
    row(&[
        "bench".into(),
        "#ops/cyc".into(),
        "serial kHz".into(),
        "MT kHz".into(),
        "MT xself".into(),
        "manticore kHz".into(),
        "xS".into(),
        "xMT".into(),
        "model kHz".into(),
        "rp kHz".into(),
        "rp x".into(),
        "VCPL".into(),
        "cores".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");

    let mut geo_s = 1.0f64;
    let mut geo_mt = 1.0f64;
    let mut geo_self = 1.0f64;
    let mut geo_rp = 1.0f64;
    let mut n = 0u32;
    let mut n_rp = 0u32;
    for w in workloads::all() {
        let cycles = w.bench_cycles;

        let mut serial = TapeSim::serial(&w.netlist).expect("tape");
        serial.run_cycles(cycles).expect("serial baseline run");
        let s_khz = serial.perf().measured_rate_khz();

        let mut par = TapeSim::parallel(&w.netlist, mt_threads, 64).expect("tape");
        par.run_cycles(cycles).expect("parallel baseline run");
        let p_khz = par.perf().measured_rate_khz();

        let out = Arc::new(compile_for_grid(
            &w.netlist,
            15,
            PartitionStrategy::Balanced,
        ));
        let config = MachineConfig::default();
        let m_khz = config.simulation_rate_khz(out.report.vcpl);

        // Measure the model itself: full interpreter vs replay engine.
        let model_vcycles = cycles.min(300);
        let interp_khz = measured_model_khz(&out, &config, false, model_vcycles);
        let replay_khz = measured_model_khz(&out, &config, true, model_vcycles);
        let rp_x = match (interp_khz, replay_khz) {
            (Some(i), Some(r)) if i > 0.0 => Some(r / i),
            _ => None,
        };
        let opt = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".into());

        let xs = m_khz / s_khz;
        let xmt = m_khz / p_khz;
        let xself = p_khz / s_khz;
        geo_s *= xs;
        geo_mt *= xmt;
        geo_self *= xself;
        if let Some(x) = rp_x {
            geo_rp *= x;
            n_rp += 1;
        }
        n += 1;

        row(&[
            w.name.into(),
            serial.tape().step_size().to_string(),
            fmt(s_khz),
            fmt(p_khz),
            fmt(xself),
            fmt(m_khz),
            fmt(xs),
            fmt(xmt),
            opt(interp_khz),
            opt(replay_khz),
            opt(rp_x),
            out.report.vcpl.to_string(),
            out.report.cores_used.to_string(),
        ]);
    }
    let g = |v: f64, k: u32| {
        if k == 0 {
            "-".into()
        } else {
            fmt(v.powf(1.0 / k as f64))
        }
    };
    println!(
        "\ngeomean speedups: xS = {}, xMT = {}, MT xself = {}, replay-vs-interpreter = {}",
        g(geo_s, n),
        g(geo_mt, n),
        g(geo_self, n),
        g(geo_rp, n_rp)
    );
    println!("\npaper anchors (225-core, 475 MHz): geomean xS 2.8-3.4, xMT 2.1-4.2;");
    println!("manticore wins everywhere except jpeg (serial Huffman chain).");
}
