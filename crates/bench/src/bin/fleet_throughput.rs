//! Fleet throughput: scenarios per second under compile-once / run-many
//! versus the sweep loop it replaces (compile + run per scenario,
//! sequentially), plus the gang engine's lane-batched rows.
//!
//! The job set is every workload × `--scenarios` instances, each instance
//! an independent simulation of the shared compiled program. The
//! **sequential baseline** executes the job set the way `design_sweep`
//! used to: for every scenario, compile the netlist, freeze the machine
//! program, run. The **fleet rows** compile and freeze once per workload,
//! then run the whole set on a work-stealing pool of 1 / 2 / 4 workers —
//! the one-time compilations are *included* in the fleet wall time, so
//! the speedup is end-to-end, not cherry-picked.
//!
//! The **gang rows** isolate the execution engine: per workload, one
//! shared compilation feeds the same scenario set twice through the same
//! 4-worker pool — once one-machine-per-scenario (`Fleet::run`, the PR 4
//! fleet), once lane-batched (`Fleet::run_ganged` with `--lanes` lanes,
//! one micro-op fetch per gang). The `gang_vs_fleet` ratio is therefore a
//! pure dispatch-amortization measurement at equal worker count on the
//! micro-op engine; `scripts/bench_gate.py --fleet-*` gates its geomean
//! against the committed `BENCH_fleet.json`.
//!
//! Run: `cargo run --release -p manticore-bench --bin fleet_throughput`
//!
//! Flags:
//! - `--json <path>` — write the measurements as JSON (same shape family
//!   as `table3_performance --json`; CI uploads it as an artifact);
//! - `--vcycles <n>` — per-scenario Vcycle budget (default 200);
//! - `--scenarios <n>` — instances per workload (default 6);
//! - `--grid <g>` — grid size to compile for (default 8);
//! - `--lanes <k>` — gang width for the gang-vs-fleet rows (default 8;
//!   0 skips them);
//! - `--gang-vcycles <n>` — per-scenario budget for the gang-vs-fleet
//!   rows (default 10000). Deliberately longer than `--vcycles`: the gang
//!   engine targets long-running scenario batches (mining, Monte Carlo,
//!   soak sweeps), so its rows are measured where execution rather than
//!   one-time machine boot dominates.

use std::time::Instant;

use manticore::fleet::{FleetJob, FleetSim};
use manticore::isa::MachineConfig;
use manticore::workloads;
use manticore::ManticoreSim;
use manticore_bench::{fmt, json::Val, reject_unknown_args, row, take_flag};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_flag(&mut args, "--json");
    let parse = |v: Option<String>, flag: &str, default: u64| -> u64 {
        v.map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects an integer, got {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
    };
    let vcycles = parse(take_flag(&mut args, "--vcycles"), "--vcycles", 200);
    let scenarios = parse(take_flag(&mut args, "--scenarios"), "--scenarios", 6) as usize;
    let grid = parse(take_flag(&mut args, "--grid"), "--grid", 8) as usize;
    let lanes = parse(take_flag(&mut args, "--lanes"), "--lanes", 8) as usize;
    let gang_vcycles = parse(
        take_flag(&mut args, "--gang-vcycles"),
        "--gang-vcycles",
        10000,
    );
    reject_unknown_args(&args);

    let all = workloads::all();
    let total_jobs = all.len() * scenarios;
    println!(
        "# Fleet throughput: {} workloads x {scenarios} scenarios x {vcycles} vcycles \
         on a {grid}x{grid} grid\n",
        all.len()
    );

    // --- Sequential baseline: compile + run per scenario ---------------
    let config = MachineConfig::with_grid(grid, grid);
    let t = Instant::now();
    for w in &all {
        for _ in 0..scenarios {
            let mut sim = ManticoreSim::compile(&w.netlist, config.clone())
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
            sim.run(vcycles)
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", w.name));
        }
    }
    let seq_secs = t.elapsed().as_secs_f64();
    let seq_rate = total_jobs as f64 / seq_secs;

    row(&[
        "configuration".into(),
        "wall s".into(),
        "scenarios/s".into(),
        "speedup".into(),
    ]);
    println!("|---|---|---|---|");
    row(&[
        "sequential compile+run".into(),
        fmt(seq_secs),
        fmt(seq_rate),
        "1.00".into(),
    ]);

    // --- Fleet: compile once per workload, batch the scenarios ---------
    let mut json_rows: Vec<Val> = Vec::new();
    let mut speedup4 = 0.0f64;
    for workers in [1usize, 2, 4] {
        let t = Instant::now();
        let mut completed = 0usize;
        for w in &all {
            let fleet = FleetSim::compile(&w.netlist, config.clone(), workers)
                .unwrap_or_else(|e| panic!("{}: fleet compile failed: {e}", w.name));
            let jobs = (0..scenarios).map(|_| fleet.job(vcycles)).collect();
            for run in fleet.run(jobs) {
                run.result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{}: fleet run failed: {e}", w.name));
                completed += 1;
            }
        }
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(completed, total_jobs);
        let rate = total_jobs as f64 / secs;
        let speedup = seq_secs / secs;
        if workers == 4 {
            speedup4 = speedup;
        }
        row(&[
            format!("fleet({workers})"),
            fmt(secs),
            fmt(rate),
            fmt(speedup),
        ]);
        json_rows.push(Val::obj(vec![
            ("workers", Val::Int(workers as u64)),
            ("wall_seconds", Val::Num(secs)),
            ("scenarios_per_sec", Val::Num(rate)),
            ("speedup_vs_sequential", Val::Num(speedup)),
        ]));
    }

    println!(
        "\ncompile-once / run-many at 4 workers: {} the sequential sweep loop",
        fmt(speedup4)
    );

    // --- Gang vs fleet: same jobs, same pool, lane-batched dispatch ----
    let mut gang_json: Option<Val> = None;
    if lanes > 1 {
        let gang_workers = 4usize;
        let gang_jobs = lanes * gang_workers;
        println!(
            "\n# Gang vs fleet: {gang_jobs} scenarios x {gang_vcycles} vcycles per workload, \
             {gang_workers} workers, gangs of {lanes} (uop engine, compile excluded)\n"
        );
        row(&[
            "workload".into(),
            "fleet scen/s".into(),
            "gang scen/s".into(),
            "gang/fleet".into(),
        ]);
        println!("|---|---|---|---|");
        let mut gang_rows: Vec<Val> = Vec::new();
        let mut log_sum = 0.0f64;
        for w in &all {
            let fleet = FleetSim::compile(&w.netlist, config.clone(), gang_workers)
                .unwrap_or_else(|e| panic!("{}: gang compile failed: {e}", w.name));
            let make_jobs =
                || -> Vec<FleetJob> { (0..gang_jobs).map(|_| fleet.job(gang_vcycles)).collect() };
            // Warm the shared program (validation schedule, page-in) so
            // neither side pays first-touch costs.
            for run in fleet.run(vec![fleet.job(vcycles)]) {
                run.result.as_ref().unwrap();
            }
            let t = Instant::now();
            for run in fleet.run(make_jobs()) {
                run.result.as_ref().unwrap();
            }
            let fleet_secs = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for run in fleet.run_ganged(make_jobs(), lanes) {
                run.result.as_ref().unwrap();
            }
            let gang_secs = t.elapsed().as_secs_f64();
            let fleet_rate = gang_jobs as f64 / fleet_secs;
            let gang_rate = gang_jobs as f64 / gang_secs;
            let ratio = gang_rate / fleet_rate;
            log_sum += ratio.ln();
            row(&[
                w.name.to_string(),
                fmt(fleet_rate),
                fmt(gang_rate),
                fmt(ratio),
            ]);
            gang_rows.push(Val::obj(vec![
                ("name", Val::Str(w.name.to_string())),
                ("fleet_scenarios_per_sec", Val::Num(fleet_rate)),
                ("gang_scenarios_per_sec", Val::Num(gang_rate)),
                ("gang_vs_fleet", Val::Num(ratio)),
            ]));
        }
        let geomean = (log_sum / all.len() as f64).exp();
        println!(
            "\ngang({lanes}) vs fleet at {gang_workers} workers: {} geomean scenarios/sec",
            fmt(geomean)
        );
        gang_json = Some(Val::obj(vec![
            ("workers", Val::Int(gang_workers as u64)),
            ("lanes", Val::Int(lanes as u64)),
            ("vcycles", Val::Int(gang_vcycles)),
            ("scenarios_per_workload", Val::Int(gang_jobs as u64)),
            ("rows", Val::Arr(gang_rows)),
            ("geomean_gang_vs_fleet", Val::Num(geomean)),
        ]));
    }

    if let Some(path) = json_path {
        let mut fields = vec![
            ("bench", Val::Str("fleet_throughput".into())),
            ("grid", Val::Int(grid as u64)),
            ("vcycles", Val::Int(vcycles)),
            ("scenarios_per_workload", Val::Int(scenarios as u64)),
            ("total_scenarios", Val::Int(total_jobs as u64)),
            (
                "sequential",
                Val::obj(vec![
                    ("wall_seconds", Val::Num(seq_secs)),
                    ("scenarios_per_sec", Val::Num(seq_rate)),
                ]),
            ),
            ("rows", Val::Arr(json_rows)),
        ];
        if let Some(gang) = gang_json {
            fields.push(("gang", gang));
        }
        let doc = Val::obj(fields);
        manticore_bench::json::write(&path, &doc);
        println!("\nwrote {path}");
    }
}
