//! Exploration throughput: forked scenarios per second under
//! coverage-guided scenario-tree exploration ([`FleetSim::explore`]).
//!
//! Per workload, one shared compilation seeds a scenario tree: the root
//! runs a short warm-up, then every round checkpoints the frontier, forks
//! each checkpoint into a `--lanes`-wide gang with fuzzed stimulus, runs
//! the gangs across the worker pool, and keeps coverage-raising children
//! (capped at `--frontier`) as the next frontier. The headline number is
//! forked scenarios per second — the rate at which checkpoint/fork/resume
//! turns one simulation into thousands of divergent ones — which is what
//! the default geometry is sized for: `1 + (rounds-1) × frontier` gangs
//! of `lanes`, > 10⁴ scenarios per workload, while memory stays flat
//! (the live set is never more than `frontier` checkpoints plus one
//! round of gangs).
//!
//! Exploration is deterministic for a fixed seed (stimulus is drawn
//! serially in submission order, results merged in submission order), so
//! the per-workload `scenarios` and `covered_bits` columns are exact
//! across runs and machines — `scripts/bench_gate.py --explore-*` gates
//! them exactly and the scenarios/sec geomean within a tolerance against
//! the committed `BENCH_explore.json`.
//!
//! Run: `cargo run --release -p manticore-bench --bin explore_throughput`
//!
//! Flags:
//! - `--json <path>` — write the measurements as JSON;
//! - `--grid <g>` — grid size to compile for (default 6);
//! - `--lanes <k>` — fork width per frontier checkpoint (default 16);
//! - `--rounds <n>` — exploration rounds (default 80);
//! - `--vcycles <n>` — Vcycles per forked child per round (default 20);
//! - `--frontier <n>` — frontier cap between rounds (default 8);
//! - `--warmup <n>` — root warm-up Vcycles (default 2);
//! - `--seed <n>` — stimulus PRNG seed (default 0);
//! - `--workers <n>` — worker threads (default 4);
//! - `--workloads <a,b>` — comma list (default `mm,bc`: both sustain the
//!   full default depth of 1602 Vcycles without reaching `$finish`);
//! - `--faults <n>` — inject a seeded [`FaultPlan`] of `n` points per
//!   workload (worker panics, stalls, spurious machine faults) and report
//!   how many scenarios were killed. The soak smoke in CI runs with a
//!   nonzero count and must exit 0 — exploration survives injection;
//! - `--fault-seed <n>` — seed for the injected plan (default 0).

use std::time::Instant;

use manticore::fleet::{BatchPolicy, ExploreConfig, FaultPlan, FleetSim};
use manticore::isa::MachineConfig;
use manticore::workloads;
use manticore_bench::{fmt, json::Val, reject_unknown_args, row, take_flag};

/// The registers each workload's fuzzer perturbs: pure data inputs (no
/// assertion in either design depends on them), so exploration diverges
/// the datapath without tripping self-checks.
fn stimulus_for(workload: &str) -> Vec<String> {
    match workload {
        // One nonce counter per hash pipe.
        "bc" => (0..6).map(|p| format!("nonce{p}")).collect(),
        // The west-edge pipeline registers of the systolic array's first
        // row: activations and partial sums.
        "mm" => (0..8)
            .flat_map(|c| [format!("ad_0_{c}"), format!("ps_0_{c}")])
            .collect(),
        // Per-lane price state of the Monte-Carlo walkers.
        "mc" => (0..8).map(|l| format!("price{l}")).collect(),
        other => panic!("no stimulus table for workload `{other}` (add one to explore_throughput)"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_flag(&mut args, "--json");
    let parse = |v: Option<String>, flag: &str, default: u64| -> u64 {
        v.map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects an integer, got {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
    };
    let grid = parse(take_flag(&mut args, "--grid"), "--grid", 6) as usize;
    let lanes = parse(take_flag(&mut args, "--lanes"), "--lanes", 16) as usize;
    let rounds = parse(take_flag(&mut args, "--rounds"), "--rounds", 80) as usize;
    let vcycles = parse(take_flag(&mut args, "--vcycles"), "--vcycles", 20);
    let frontier = parse(take_flag(&mut args, "--frontier"), "--frontier", 8) as usize;
    let warmup = parse(take_flag(&mut args, "--warmup"), "--warmup", 2);
    let seed = parse(take_flag(&mut args, "--seed"), "--seed", 0);
    let workers = parse(take_flag(&mut args, "--workers"), "--workers", 4) as usize;
    let names = take_flag(&mut args, "--workloads").unwrap_or_else(|| "mm,bc".into());
    let faults = parse(take_flag(&mut args, "--faults"), "--faults", 0) as usize;
    let fault_seed = parse(take_flag(&mut args, "--fault-seed"), "--fault-seed", 0);
    reject_unknown_args(&args);

    let names: Vec<&str> = names.split(',').filter(|s| !s.is_empty()).collect();
    println!(
        "# Exploration throughput: scenario trees of {lanes}-lane forks, {rounds} rounds x \
         {vcycles} vcycles, frontier cap {frontier}, {workers} workers, {grid}x{grid} grid\n"
    );

    row(&[
        "workload".into(),
        "scenarios".into(),
        "wall s".into(),
        "scenarios/s".into(),
        "covered bits".into(),
        "displays".into(),
        "asserts".into(),
        "faults".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|");

    let config = MachineConfig::with_grid(grid, grid);
    let cfg = ExploreConfig {
        lanes,
        rounds,
        vcycles_per_round: vcycles,
        warmup_vcycles: warmup,
        frontier_cap: frontier,
        seed,
        stimulus: Vec::new(),
    };

    // The soak mode: spread `--faults` seeded injection points over the
    // tree's child-ordinal space. The headline numbers are only gated on
    // the clean path (`--faults 0`), where the policy is exactly default.
    let policy = if faults > 0 {
        let jobs = 1 + rounds * frontier * lanes;
        BatchPolicy {
            faults: FaultPlan::seeded(fault_seed, jobs, vcycles, faults),
            ..BatchPolicy::default()
        }
    } else {
        BatchPolicy::default()
    };

    let mut json_rows: Vec<Val> = Vec::new();
    let mut log_sum = 0.0f64;
    for name in &names {
        let w = workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
        let stimulus = stimulus_for(name);
        let stimulus: Vec<&str> = stimulus.iter().map(String::as_str).collect();
        let fleet = FleetSim::compile(&w.netlist, config.clone(), workers)
            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let t = Instant::now();
        let report = fleet
            .explore_with(&stimulus, &cfg, &policy)
            .unwrap_or_else(|e| panic!("{name}: explore failed: {e}"));
        let secs = t.elapsed().as_secs_f64();
        if faults > 0 {
            println!(
                "# {name}: survived a {faults}-point injected plan (seed {fault_seed}): \
                 {} scenarios killed, {} explored",
                report.killed, report.scenarios
            );
        }
        let rate = report.scenarios as f64 / secs;
        log_sum += rate.ln();
        row(&[
            name.to_string(),
            report.scenarios.to_string(),
            fmt(secs),
            fmt(rate),
            report.covered_bits.to_string(),
            report.displays.to_string(),
            report.asserts.to_string(),
            report.faults.to_string(),
        ]);
        json_rows.push(Val::obj(vec![
            ("name", Val::Str(name.to_string())),
            ("scenarios", Val::Int(report.scenarios)),
            ("rounds_run", Val::Int(report.rounds_run as u64)),
            ("wall_seconds", Val::Num(secs)),
            ("scenarios_per_sec", Val::Num(rate)),
            ("covered_bits", Val::Int(report.covered_bits)),
            ("frontier_peak", Val::Int(report.frontier_peak as u64)),
            ("displays", Val::Int(report.displays)),
            ("asserts", Val::Int(report.asserts)),
            ("faults", Val::Int(report.faults)),
            ("finished", Val::Int(report.finished)),
        ]));
    }

    let geomean = (log_sum / names.len() as f64).exp();
    println!(
        "\nexploration geomean: {} forked scenarios/sec",
        fmt(geomean)
    );

    if let Some(path) = json_path {
        let v = Val::obj(vec![
            ("bench", Val::Str("explore_throughput".into())),
            ("grid", Val::Int(grid as u64)),
            ("lanes", Val::Int(lanes as u64)),
            ("rounds", Val::Int(rounds as u64)),
            ("vcycles", Val::Int(vcycles)),
            ("frontier", Val::Int(frontier as u64)),
            ("warmup", Val::Int(warmup)),
            ("seed", Val::Int(seed)),
            ("workers", Val::Int(workers as u64)),
            ("rows", Val::Arr(json_rows)),
            ("geomean_scenarios_per_sec", Val::Num(geomean)),
        ]);
        manticore_bench::json::write(&path, &v);
        println!("wrote {path}");
    }
}
