//! `serve_soak` — sustained-load harness for the simulation service.
//!
//! Boots a real server on a loopback socket, then drives a large stream
//! of jobs through real client connections, one phase per catalog
//! design: `--conns` clients per phase, each pipelining submissions with
//! a bounded in-flight window, honoring `retry_after_ms` on rejects.
//! Reports per-design jobs/s (and their geomean), the cache counters
//! (hit rate is *deterministic*: misses must equal the design count),
//! and RSS flatness (final RSS vs RSS after the warm-up compiles — a
//! leaky server fails the within-10% acceptance bound).
//!
//! ```text
//! serve_soak [--jobs N] [--conns C] [--vcycles V] [--workers W]
//!            [--lanes L] [--json PATH]
//! ```
//!
//! The committed baseline is BENCH_serve.json; scripts/bench_gate.py
//! gates fresh runs against it with `--serve-fresh/--serve-baseline`.

use std::time::{Duration, Instant};

use manticore_bench::json::Val;
use manticore_bench::{fmt, reject_unknown_args, take_flag};
use manticore_serve::client::Client;
use manticore_serve::proto::{Reply, Request, SubmitReq};
use manticore_serve::server::{Server, ServerConfig};

/// (design, poked register, read-back register) per soak phase.
const DESIGNS: [(&str, &str, &str); 4] = [
    ("counter", "count", "count"),
    ("accum", "acc", "acc"),
    ("lfsr", "lfsr", "lfsr"),
    ("toggle", "edges", "edges"),
];

/// Submissions a connection keeps in flight before reading replies.
const WINDOW: u64 = 32;

fn rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn submit(id: u64, design: &str, vcycles: u64, poke: (&str, u64), read: &str) -> Request {
    Request::Submit(SubmitReq {
        id,
        design: design.into(),
        grid: None,
        vcycles,
        pokes: vec![(poke.0.to_string(), poke.1)],
        reads: vec![read.to_string()],
        deadline_ms: None,
        park: false,
    })
}

/// One connection's share of a phase: pipeline `jobs` submissions with
/// at most WINDOW outstanding, resubmitting rejects after their hint.
/// Returns (completed, rejects_seen).
fn drive(
    addr: std::net::SocketAddr,
    design: &str,
    poke_reg: &str,
    read_reg: &str,
    vcycles: u64,
    jobs: u64,
) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("connect");
    let mut next: u64 = 0;
    let mut in_flight: u64 = 0;
    let mut completed: u64 = 0;
    let mut rejects: u64 = 0;
    // Rejected ids to resubmit once their backoff elapses.
    let mut retry: Vec<(u64, Instant)> = Vec::new();
    while completed < jobs {
        // Fill the window: backoff-expired retries first, then new work.
        while in_flight < WINDOW {
            let now = Instant::now();
            let id = if let Some(pos) = retry.iter().position(|&(_, at)| at <= now) {
                retry.swap_remove(pos).0
            } else if next < jobs {
                next += 1;
                next - 1
            } else {
                break;
            };
            client
                .send(&submit(
                    id,
                    design,
                    vcycles,
                    (poke_reg, id & 0xffff),
                    read_reg,
                ))
                .expect("send");
            in_flight += 1;
        }
        if in_flight == 0 {
            // Everything outstanding is backing off; wait out the
            // earliest deadline.
            let earliest = retry
                .iter()
                .map(|&(_, at)| at)
                .min()
                .expect("retries exist");
            std::thread::sleep(earliest.saturating_duration_since(Instant::now()));
            continue;
        }
        match client.recv().expect("recv").expect("server open") {
            Reply::Result(r) => {
                assert_eq!(r.outcome, "budget", "micro designs never finish");
                assert_eq!(r.vcycles_run, vcycles);
                assert_eq!(r.regs.len(), 1, "one read-back per job");
                in_flight -= 1;
                completed += 1;
            }
            Reply::Reject {
                id, retry_after_ms, ..
            } => {
                in_flight -= 1;
                rejects += 1;
                retry.push((id, Instant::now() + Duration::from_millis(retry_after_ms)));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    (completed, rejects)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs_total: u64 = take_flag(&mut args, "--jobs")
        .map(|v| v.parse().expect("--jobs"))
        .unwrap_or(100_000);
    let conns: usize = take_flag(&mut args, "--conns")
        .map(|v| v.parse().expect("--conns"))
        .unwrap_or(4);
    let vcycles: u64 = take_flag(&mut args, "--vcycles")
        .map(|v| v.parse().expect("--vcycles"))
        .unwrap_or(200);
    let workers: usize = take_flag(&mut args, "--workers")
        .map(|v| v.parse().expect("--workers"))
        .unwrap_or(2);
    let lanes: usize = take_flag(&mut args, "--lanes")
        .map(|v| v.parse().expect("--lanes"))
        .unwrap_or(4);
    let json_path = take_flag(&mut args, "--json");
    reject_unknown_args(&args);

    let jobs_per_design = (jobs_total / DESIGNS.len() as u64).max(1);
    let cfg = ServerConfig {
        workers,
        lanes,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr();

    // Warm-up: a scaled-down pass with the soak's exact concurrency
    // shape. It triggers each design's compile (the misses) and brings
    // the process to steady state — thread stacks, allocator arenas,
    // socket buffers — so the RSS baseline measures the *plateau*, and
    // any growth after it is per-job leakage, the thing the flatness
    // bound is for.
    let warm_jobs = (jobs_per_design / 20).max(conns as u64 * WINDOW);
    for (design, poke_reg, read_reg) in DESIGNS {
        std::thread::scope(|scope| {
            for _ in 0..conns {
                scope.spawn(move || {
                    drive(
                        addr,
                        design,
                        poke_reg,
                        read_reg,
                        vcycles,
                        warm_jobs / conns as u64,
                    )
                });
            }
        });
    }
    let rss_warm = rss_bytes();
    let warm = server.cache_stats();
    assert_eq!(
        warm.misses,
        DESIGNS.len() as u64,
        "warm-up compiles each design exactly once"
    );

    println!(
        "serve_soak: {} jobs x {} designs, {} conns, {} vcycles/job, {} workers, {} lanes",
        jobs_per_design,
        DESIGNS.len(),
        conns,
        vcycles,
        workers,
        lanes
    );
    manticore_bench::row(&[
        "design".into(),
        "jobs".into(),
        "wall s".into(),
        "jobs/s".into(),
        "rejects".into(),
    ]);

    let mut rows = Vec::new();
    let mut rates = Vec::new();
    let mut total_jobs: u64 = 0;
    let mut total_rejects: u64 = 0;
    let start_all = Instant::now();
    for (design, poke_reg, read_reg) in DESIGNS {
        let start = Instant::now();
        let per_conn = jobs_per_design / conns as u64;
        let mut counts: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|i| {
                    // The first connection absorbs the division remainder.
                    let share = if i == 0 {
                        jobs_per_design - per_conn * (conns as u64 - 1)
                    } else {
                        per_conn
                    };
                    scope.spawn(move || drive(addr, design, poke_reg, read_reg, vcycles, share))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = start.elapsed().as_secs_f64();
        let done: u64 = counts.iter().map(|&(c, _)| c).sum();
        let rejects: u64 = counts.drain(..).map(|(_, r)| r).sum();
        assert_eq!(done, jobs_per_design, "{design}: every job completes");
        let rate = done as f64 / wall;
        manticore_bench::row(&[
            design.into(),
            done.to_string(),
            fmt(wall),
            fmt(rate),
            rejects.to_string(),
        ]);
        rows.push(Val::obj(vec![
            ("name", Val::Str(design.into())),
            ("jobs", Val::Int(done)),
            ("wall_seconds", Val::Num(wall)),
            ("jobs_per_sec", Val::Num(rate)),
            ("rejects", Val::Int(rejects)),
        ]));
        rates.push(rate);
        total_jobs += done;
        total_rejects += rejects;
    }
    let wall_all = start_all.elapsed().as_secs_f64();
    let rss_final = rss_bytes();
    let geomean = (rates.iter().map(|r| r.ln()).sum::<f64>() / rates.len() as f64).exp();

    let cache = server.cache_stats();
    let hit_rate = cache.hits as f64 / (cache.hits + cache.misses) as f64;
    let rss_growth = if rss_warm > 0 {
        rss_final as f64 / rss_warm as f64
    } else {
        1.0
    };
    // The acceptance bounds, asserted here so a local run fails loudly
    // without the gate: deterministic compile count (hence hit rate),
    // and flat memory.
    assert_eq!(
        cache.misses,
        DESIGNS.len() as u64,
        "soak must never recompile: every post-warm job is a cache hit"
    );
    assert!(
        hit_rate >= 0.90,
        "cache hit rate {hit_rate:.4} below the 90% acceptance floor"
    );
    assert!(
        rss_growth <= 1.10,
        "RSS grew {rss_growth:.3}x over the soak — the server is not flat"
    );

    println!(
        "total: {total_jobs} jobs in {} ({} jobs/s geomean), hit rate {:.4}, \
         RSS {:.1} MiB -> {:.1} MiB ({:.3}x), {total_rejects} rejects",
        fmt(wall_all),
        fmt(geomean),
        hit_rate,
        rss_warm as f64 / (1 << 20) as f64,
        rss_final as f64 / (1 << 20) as f64,
        rss_growth
    );

    if let Some(path) = json_path {
        let out = Val::obj(vec![
            ("bench", Val::Str("serve_soak".into())),
            ("jobs_per_design", Val::Int(jobs_per_design)),
            ("jobs_total", Val::Int(total_jobs)),
            ("conns", Val::Int(conns as u64)),
            ("vcycles", Val::Int(vcycles)),
            ("workers", Val::Int(workers as u64)),
            ("lanes", Val::Int(lanes as u64)),
            ("rows", Val::Arr(rows)),
            ("geomean_jobs_per_sec", Val::Num(geomean)),
            ("wall_seconds", Val::Num(wall_all)),
            ("cache_hits", Val::Int(cache.hits)),
            ("cache_misses", Val::Int(cache.misses)),
            ("cache_evictions", Val::Int(cache.evictions)),
            ("cache_hit_rate", Val::Num(hit_rate)),
            ("rejects", Val::Int(total_rejects)),
            ("rss_warm_bytes", Val::Int(rss_warm)),
            ("rss_final_bytes", Val::Int(rss_final)),
            ("rss_growth", Val::Num(rss_growth)),
        ]);
        manticore_bench::json::write(&path, &out);
        println!("wrote {path}");
    }
}
