//! Fig. 10: the custom-instruction ablation — VCPL with custom-function
//! synthesis enabled, normalized to disabled, plus the reduction in total
//! non-NOP instructions across all cores.
//!
//! Run: `cargo run --release -p manticore-bench --bin fig10_custom_functions`

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::workloads;
use manticore_bench::{fmt, row};

fn main() {
    println!("# Fig. 10: custom-instruction savings (15x15 grid)\n");
    row(&[
        "bench".into(),
        "VCPL off".into(),
        "VCPL on".into(),
        "VCPL ratio".into(),
        "instr off".into(),
        "instr on".into(),
        "instr saved %".into(),
        "custom ops".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|");

    for w in workloads::all() {
        let mut results = Vec::new();
        for enable in [false, true] {
            let options = CompileOptions {
                config: MachineConfig::default(),
                custom_functions: enable,
                ..Default::default()
            };
            results.push(compile(&w.netlist, &options).expect("compiles"));
        }
        let off = &results[0].report;
        let on = &results[1].report;
        let saved = 100.0 * (1.0 - on.total_instructions as f64 / off.total_instructions as f64);
        row(&[
            w.name.into(),
            off.vcpl.to_string(),
            on.vcpl.to_string(),
            fmt(on.vcpl as f64 / off.vcpl as f64),
            off.total_instructions.to_string(),
            on.total_instructions.to_string(),
            fmt(saved),
            on.total_custom.to_string(),
        ]);
    }
    println!("\nexpected shape (paper Fig. 10): total instruction reductions of ~3-18%,");
    println!("but end-to-end VCPL improves <10% — fused logic may not sit on the straggler.");
}
