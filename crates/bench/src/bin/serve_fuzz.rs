//! `serve_fuzz` — protocol-fuzz smoke for the hardening harness.
//!
//! Boots a real server on a loopback socket and drives the deterministic
//! protocol fuzzer ([`manticore_serve::fuzz`]) against it: hostile
//! length prefixes, truncated frames, garbage, malformed and
//! type-confused JSON, depth bombs, over-limit netlists. The run fails
//! if the server ever hangs a well-formed probe, leaks a session, or
//! stops serving. A failing seed reproduces exactly: the traffic is a
//! pure function of `--seed`.
//!
//! ```text
//! serve_fuzz [--frames N] [--seed S] [--workers W]
//! ```

use std::time::Duration;

use manticore_bench::{reject_unknown_args, take_flag};
use manticore_serve::fuzz::{run_fuzz, FuzzConfig};
use manticore_serve::server::{Server, ServerConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let frames: usize = take_flag(&mut args, "--frames")
        .map(|v| v.parse().expect("--frames"))
        .unwrap_or(10_000);
    let seed: u64 = take_flag(&mut args, "--seed")
        .map(|v| v.parse().expect("--seed"))
        .unwrap_or(0xF055);
    let workers: usize = take_flag(&mut args, "--workers")
        .map(|v| v.parse().expect("--workers"))
        .unwrap_or(2);
    reject_unknown_args(&args);

    let cfg = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let config = FuzzConfig {
        seed,
        frames,
        probe_timeout: Duration::from_secs(30),
    };
    let start = std::time::Instant::now();
    let report = run_fuzz(server.local_addr(), &config)
        .unwrap_or_else(|e| panic!("fuzz run (seed {seed}) found a server bug: {e}"));
    let wall = start.elapsed().as_secs_f64();

    println!(
        "serve_fuzz: {frames} frames (seed {seed:#x}) in {wall:.2}s — \
         {} replies, {} reconnects, {} live sessions",
        report.replies, report.reconnects, report.live_sessions
    );
    for (class, count) in &report.sent {
        println!("  {class:<16} {count}");
    }
    assert_eq!(report.live_sessions, 0, "fuzz traffic must not park");
}
