//! Fig. 7: Manticore's multicore scaling — compiler-predicted speedup
//! (single-core VCPL divided by n-core VCPL) as the grid grows from 1 to
//! 18×18 = 324 cores, for all nine workloads.
//!
//! As in the paper, the numbers are predicted by the compiler's virtual
//! critical-path length, which counts machine cycles exactly when there
//! are no off-chip accesses; single-core VCPL serves as the baseline even
//! where a real single-core run would overflow the instruction memory (we
//! lift the imem bound for the baseline estimate, as the paper notes
//! single-core execution is usually impossible on the prototype).
//!
//! A second section sweeps the *model's own* host-side parallelism: the
//! sharded BSP engine at 1–8 shards with the replay fast path off, on the
//! pre-decoded tape, and on the fused micro-op stream — driven entirely
//! through the unified `Simulator` trait, reporting measured wall-clock
//! simulation rates.
//!
//! Run: `cargo run --release -p manticore-bench --bin fig07_manticore_scaling`
//!
//! Flags: `--json <path>` writes the shard-sweep measurements as JSON.

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::ExecMode;
use manticore::sim::Simulator;
use manticore::workloads;
use manticore::ManticoreSim;
use manticore_bench::{fmt, json::Val, reject_unknown_args, take_flag, ModelEngine};

/// Measured wall-clock Vcycle rate of the machine model at each shard
/// count, with each replay lowering — all through the `Simulator` trait.
fn shard_sweep(json_path: Option<&str>) {
    let shard_counts = [1usize, 2, 4, 8];
    let grid = 8;
    let vcycles = 400;
    println!("\n# Model host-parallelism sweep: sharded BSP engine, measured kHz\n");
    print!("{:>8}", "bench");
    for s in shard_counts {
        for engine in ModelEngine::ALL {
            print!(" {:>9}", format!("{s}sh{}", engine.suffix()));
        }
    }
    println!("   (grid {grid}x{grid}, {vcycles} Vcycles)");
    let mut json_rows: Vec<Val> = Vec::new();
    for name in ["vta", "mm", "bc"] {
        let w = workloads::by_name(name).unwrap();
        print!("{:>8}", w.name);
        // One compilation feeds every column, so all measurements run the
        // same binary.
        let config = MachineConfig::with_grid(grid, grid);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let output = match compile(&w.netlist, &options) {
            Ok(out) => std::sync::Arc::new(out),
            Err(_) => {
                for _ in 0..shard_counts.len() * ModelEngine::ALL.len() {
                    print!(" {:>9}", "-");
                }
                println!();
                continue;
            }
        };
        let mut cells: Vec<(String, f64)> = Vec::new();
        for shards in shard_counts {
            for engine in ModelEngine::ALL {
                let mut sim = match ManticoreSim::from_output(output.clone(), config.clone()) {
                    Ok(s) => s,
                    Err(_) => {
                        print!(" {:>9}", "-");
                        continue;
                    }
                };
                sim.set_exec_mode(if shards == 1 {
                    ExecMode::Serial
                } else {
                    ExecMode::Parallel { shards }
                });
                engine.apply(&mut sim);
                match sim.run_cycles(vcycles) {
                    Ok(_) => {
                        let khz = sim.perf().measured_rate_khz();
                        print!(" {:>9}", fmt(khz));
                        cells.push((format!("{shards}sh{}", engine.suffix()), khz));
                    }
                    Err(_) => print!(" {:>9}", "!"),
                }
            }
        }
        println!();
        json_rows.push(Val::obj(vec![
            ("name", Val::Str(w.name.to_string())),
            (
                "khz",
                Val::Obj(cells.into_iter().map(|(k, v)| (k, Val::Num(v))).collect()),
            ),
        ]));
    }
    println!("\n(+rp = pre-decoded tape replay, +uop = fused micro-op replay; bit-identical");
    println!("results in every column; see tests/parallel_grid_equivalence.rs)");
    if let Some(path) = json_path {
        let doc = Val::obj(vec![
            ("bench", Val::Str("fig07_manticore_scaling".into())),
            ("grid", Val::Int(grid as u64)),
            ("vcycles", Val::Int(vcycles)),
            ("rows", Val::Arr(json_rows)),
        ]);
        manticore_bench::json::write(path, &doc);
        println!("wrote {path}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = take_flag(&mut args, "--json");
    reject_unknown_args(&args);

    let grids: [usize; 8] = [1, 3, 5, 7, 9, 11, 13, 18];
    println!("# Fig. 7: Manticore multicore scaling (speedup vs 1 core, VCPL-predicted)\n");
    print!("{:>8}", "bench");
    for g in grids {
        print!(" {:>7}", g * g);
    }
    println!("   (cores)");

    for w in workloads::all() {
        print!("{:>8}", w.name);
        let mut base: Option<f64> = None;
        for g in grids {
            let mut config = MachineConfig::with_grid(g, g);
            // The 1x1 baseline usually exceeds the real 4096-entry imem;
            // lift it for the estimate (predicted VCPL, as in the paper).
            config.imem_capacity = usize::MAX / 2;
            let options = CompileOptions {
                config,
                ..Default::default()
            };
            match compile(&w.netlist, &options) {
                Ok(out) => {
                    let vcpl = out.report.vcpl as f64;
                    let b = *base.get_or_insert(vcpl);
                    print!(" {:>7}", fmt(b / vcpl));
                }
                Err(_) => print!(" {:>7}", "-"),
            }
        }
        println!();
    }
    println!("\nexpected shape (paper Fig. 7): parallel workloads (mc, cgra, vta) keep");
    println!("improving toward 200-300 cores; jpeg plateaus almost immediately (Amdahl).");

    shard_sweep(json_path.as_deref());
}
