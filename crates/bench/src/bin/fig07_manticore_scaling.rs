//! Fig. 7: Manticore's multicore scaling — compiler-predicted speedup
//! (single-core VCPL divided by n-core VCPL) as the grid grows from 1 to
//! 18×18 = 324 cores, for all nine workloads.
//!
//! As in the paper, the numbers are predicted by the compiler's virtual
//! critical-path length, which counts machine cycles exactly when there
//! are no off-chip accesses; single-core VCPL serves as the baseline even
//! where a real single-core run would overflow the instruction memory (we
//! lift the imem bound for the baseline estimate, as the paper notes
//! single-core execution is usually impossible on the prototype).
//!
//! A second section sweeps the *model's own* host-side parallelism: the
//! sharded BSP engine at 1–8 shards, driven entirely through the unified
//! `Simulator` trait, reporting measured wall-clock simulation rates.
//!
//! Run: `cargo run --release -p manticore-bench --bin fig07_manticore_scaling`

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::ExecMode;
use manticore::sim::Simulator;
use manticore::workloads;
use manticore::ManticoreSim;
use manticore_bench::fmt;

/// Measured wall-clock Vcycle rate of the machine model at each shard
/// count, with the validate-once / replay-many fast path off and on — all
/// through the `Simulator` trait.
fn shard_sweep() {
    let shard_counts = [1usize, 2, 4, 8];
    let grid = 8;
    let vcycles = 400;
    println!("\n# Model host-parallelism sweep: sharded BSP engine, measured kHz\n");
    print!("{:>8}", "bench");
    for s in shard_counts {
        for replay in [false, true] {
            print!(
                " {:>10}",
                format!("{s}sh{}", if replay { "+rp" } else { "" })
            );
        }
    }
    println!("   (grid {grid}x{grid}, {vcycles} Vcycles)");
    for name in ["vta", "mm", "bc"] {
        let w = workloads::by_name(name).unwrap();
        print!("{:>8}", w.name);
        // One compilation feeds every column, so all measurements run the
        // same binary.
        let config = MachineConfig::with_grid(grid, grid);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let output = match compile(&w.netlist, &options) {
            Ok(out) => std::sync::Arc::new(out),
            Err(_) => {
                for _ in 0..shard_counts.len() * 2 {
                    print!(" {:>10}", "-");
                }
                println!();
                continue;
            }
        };
        for shards in shard_counts {
            for replay in [false, true] {
                let mut sim = match ManticoreSim::from_output(output.clone(), config.clone()) {
                    Ok(s) => s,
                    Err(_) => {
                        print!(" {:>10}", "-");
                        continue;
                    }
                };
                sim.set_exec_mode(if shards == 1 {
                    ExecMode::Serial
                } else {
                    ExecMode::Parallel { shards }
                });
                sim.set_replay(replay);
                match sim.run_cycles(vcycles) {
                    Ok(_) => print!(" {:>10}", fmt(sim.perf().measured_rate_khz())),
                    Err(_) => print!(" {:>10}", "!"),
                }
            }
        }
        println!();
    }
    println!("\n(+rp = validate-once / replay-many engine; bit-identical results in every");
    println!("column; see tests/parallel_grid_equivalence.rs)");
}

fn main() {
    let grids: [usize; 8] = [1, 3, 5, 7, 9, 11, 13, 18];
    println!("# Fig. 7: Manticore multicore scaling (speedup vs 1 core, VCPL-predicted)\n");
    print!("{:>8}", "bench");
    for g in grids {
        print!(" {:>7}", g * g);
    }
    println!("   (cores)");

    for w in workloads::all() {
        print!("{:>8}", w.name);
        let mut base: Option<f64> = None;
        for g in grids {
            let mut config = MachineConfig::with_grid(g, g);
            // The 1x1 baseline usually exceeds the real 4096-entry imem;
            // lift it for the estimate (predicted VCPL, as in the paper).
            config.imem_capacity = usize::MAX / 2;
            let options = CompileOptions {
                config,
                ..Default::default()
            };
            match compile(&w.netlist, &options) {
                Ok(out) => {
                    let vcpl = out.report.vcpl as f64;
                    let b = *base.get_or_insert(vcpl);
                    print!(" {:>7}", fmt(b / vcpl));
                }
                Err(_) => print!(" {:>7}", "-"),
            }
        }
        println!();
    }
    println!("\nexpected shape (paper Fig. 7): parallel workloads (mc, cgra, vta) keep");
    println!("improving toward 200-300 cores; jpeg plateaus almost immediately (Amdahl).");

    shard_sweep();
}
