//! Fig. 8: the cost of going off-chip — FIFO and RAM microbenchmarks at
//! 1 KiB / 64 KiB / 512 KiB on a 1×1 grid, reporting total machine cycles
//! (normalized to the 1 KiB run) and cache hit rates from the hardware
//! performance counters.
//!
//! The 1 KiB design fits the scratchpad (no global stalls); 64 KiB spills
//! to the cache; 512 KiB spreads between cache and DRAM. FIFOs access
//! sequentially (high spatial locality); RAMs use an xorshift address
//! stream (as in the paper).
//!
//! Run: `cargo run --release -p manticore-bench --bin fig08_global_stall`

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::Machine;
use manticore::netlist::{Netlist, NetlistBuilder};
use manticore_bench::{fmt, row};

/// One load + one store per Vcycle against a `words`-word memory.
/// `sequential` selects FIFO (sequential) vs RAM (xorshift) addressing.
fn microbench(words: usize, sequential: bool) -> Netlist {
    let aw = (words as u64).next_power_of_two().trailing_zeros() as usize;
    let mut b = NetlistBuilder::new(if sequential { "fifo" } else { "ram" });
    let mem = b.memory("m", words, 16);

    let addr = if sequential {
        let head = b.reg("head", aw, 0);
        let one = b.lit(1, aw);
        let next = b.add(head.q(), one);
        b.set_next(head, next);
        head.q()
    } else {
        // xorshift32 address stream (wide enough for 512 KiB = 18-bit
        // word addresses)
        let s = b.reg("xs", 32, 0xdeadbeef);
        let s1 = b.shl_const(s.q(), 13);
        let x1 = b.xor(s.q(), s1);
        let s2 = b.shr_const(x1, 17);
        let x2 = b.xor(x1, s2);
        let s3 = b.shl_const(x2, 5);
        let x3 = b.xor(x2, s3);
        b.set_next(s, x3);
        b.slice(s.q(), 0, aw)
    };

    // One read and one (shifted-address) write per Vcycle.
    let rd = b.mem_read(mem, addr);
    let sink = b.reg("sink", 16, 0);
    b.set_next(sink, rd);
    let one = b.lit(1, 16);
    let data = b.add(rd, one);
    let en = b.lit(1, 1);
    b.mem_write(mem, addr, data, en);
    b.output("sink", sink.q());
    b.finish_build().expect("microbench netlist valid")
}

fn main() {
    // 16-bit words: 1 KiB = 512, 64 KiB = 32768, 512 KiB = 262144.
    let sizes = [
        (512usize, "1KiB"),
        (32 * 1024, "64KiB"),
        (512 * 1024 / 2, "512KiB"),
    ];
    let vcycles = 20_000u64; // scaled from the paper's 16 Mi

    println!("# Fig. 8: global-stall microbenchmarks (1x1 grid, {vcycles} Vcycles)\n");
    row(&[
        "design".into(),
        "size".into(),
        "cycles".into(),
        "normalized".into(),
        "stall %".into(),
        "hit rate".into(),
    ]);
    println!("|---|---|---|---|---|---|");

    for sequential in [true, false] {
        let mut baseline = None;
        for &(words, label) in &sizes {
            let netlist = microbench(words, sequential);
            let config = MachineConfig::with_grid(1, 1);
            let options = CompileOptions {
                config: config.clone(),
                ..Default::default()
            };
            let out = compile(&netlist, &options).expect("compiles");
            let mut machine = Machine::load(config, &out.binary).expect("loads");
            machine.run_vcycles(vcycles).expect("runs");
            let c = machine.counters();
            let total = c.total_cycles();
            let base = *baseline.get_or_insert(total);
            let stats = machine.cache_stats();
            row(&[
                if sequential { "FIFO" } else { "RAM" }.into(),
                label.to_string(),
                total.to_string(),
                fmt(total as f64 / base as f64),
                fmt(c.stall_fraction() * 100.0),
                if stats.hits + stats.misses == 0 {
                    "n/a (on-chip)".into()
                } else {
                    format!("{:.2}%", stats.hit_rate() * 100.0)
                },
            ]);
        }
    }
    println!("\nexpected shape (paper Fig. 8): FIFO hit rates stay >99.9% at all sizes");
    println!("(sequential locality); RAM at 512KiB drops toward ~62% and its cycle count");
    println!("grows the most; even hits cost stalls (every access gates the clock).");
}
