//! Tables 5 & 6: the Azure cost analysis — hours and dollars to simulate
//! 1B and 10B RTL cycles per workload on serial/multithreaded baselines
//! vs. a Manticore instance, using the paper's instance pricing and the
//! rates measured/predicted by this harness.
//!
//! Run: `cargo run --release -p manticore-bench --bin table6_cost`

use manticore::compiler::PartitionStrategy;
use manticore::isa::MachineConfig;
use manticore::refsim::{ParallelSim, SerialSim, Tape};
use manticore::workloads;
use manticore_bench::{compile_for_grid, cost, fmt, row, INSTANCES};

fn main() {
    println!("# Table 5: instance pricing\n");
    row(&["instance".into(), "$/hour".into()]);
    println!("|---|---|");
    for i in INSTANCES {
        row(&[i.name.into(), format!("{:.3}", i.dollars_per_hour)]);
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    println!("\n# Table 6: cost of 1B / 10B-cycle simulations (rates from this harness)\n");
    row(&[
        "bench".into(),
        "cycles".into(),
        "serial h".into(),
        "serial $".into(),
        "MT h".into(),
        "MT $".into(),
        "manticore h".into(),
        "manticore $".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|");

    for w in workloads::all() {
        let tape = Tape::compile(&w.netlist).expect("tape");
        let mut serial = SerialSim::new(&tape);
        let s_khz = serial.run(w.bench_cycles).rate_khz();
        let par = ParallelSim::new(&tape, threads, 64);
        let mt_khz = par.run(w.bench_cycles).stats.rate_khz();
        let out = compile_for_grid(&w.netlist, 15, PartitionStrategy::Balanced);
        let m_khz = MachineConfig::default().simulation_rate_khz(out.report.vcpl);

        for cycles in [1e9, 1e10] {
            let (sh, sd) = cost(cycles, s_khz, INSTANCES[0].dollars_per_hour);
            let (mh, md) = cost(cycles, mt_khz, INSTANCES[1].dollars_per_hour);
            let (nh, nd) = cost(cycles, m_khz, INSTANCES[3].dollars_per_hour);
            row(&[
                w.name.into(),
                if cycles > 1e9 {
                    "10B".into()
                } else {
                    "1B".into()
                },
                fmt(sh),
                format!("${}", fmt(sd)),
                fmt(mh),
                format!("${}", fmt(md)),
                fmt(nh),
                format!("${}", fmt(nd)),
            ]);
        }
    }
    println!("\nthe paper's takeaway: the cost differences are small; the productivity");
    println!("difference is not — 10B-cycle runs finish in a workday on Manticore and");
    println!("take days on software simulators.");
}
