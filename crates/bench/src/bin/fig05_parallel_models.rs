//! Fig. 5 / Fig. 14: the limits of fine-grained parallel simulation on a
//! general-purpose processor — simulation rate vs. thread count for the
//! §7.1 models (model 1: barrier cost only; model 2: + cache pressure),
//! across granularities from 1.7K to 3.5M instructions per cycle.
//!
//! Run: `cargo run --release -p manticore-bench --bin fig05_parallel_models`

use manticore::refsim::models::{model1, model2};
use manticore_bench::fmt;

fn main() {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .min(24);
    let granularities: [u64; 12] = [
        1_700, 3_500, 6_900, 13_800, 27_600, 55_300, 110_600, 221_200, 442_400, 884_700, 1_800_000,
        3_500_000,
    ];
    let threads: Vec<usize> = (1..=max_threads).collect();

    println!("# Fig. 5: parallel-simulation models, rate (kHz) vs threads\n");
    for (name, is_model2) in [
        ("model 1 (barriers only)", false),
        ("model 2 (+ cache pressure)", true),
    ] {
        println!("## {name}\n");
        print!("{:>10}", "granularity");
        for t in &threads {
            print!(" {t:>8}");
        }
        println!("  | max speedup");
        for &g in &granularities {
            // Budget the cycle count so each (g, t) sample costs ~tens of ms.
            let cycles = (40_000_000 / g).clamp(8, 20_000);
            print!("{g:>10}");
            let mut base = 0.0f64;
            let mut best = 0.0f64;
            for &t in &threads {
                let r = if is_model2 {
                    model2(t, g, cycles)
                } else {
                    model1(t, g, cycles)
                };
                let khz = r.rate_khz();
                if t == 1 {
                    base = khz;
                }
                best = best.max(khz);
                print!(" {:>8}", fmt(khz));
            }
            println!("  | {:.1}x", best / base);
        }
        println!();
    }
    println!("expected shape (paper): fine granularities collapse beyond 1-2 threads;");
    println!("multi-hundred-K granularities scale but at low absolute rates;");
    println!("model 2 shows larger max speedups because its serial base suffers cache misses.");
}
