//! `serve_recovery` — crash-recovery soak for the durable-session path.
//!
//! Boots the server as a *separate process* (this binary re-execs itself
//! with `--serve`), parks a population of sessions mid-run, piles
//! un-parked background load on top, and then SIGKILLs the daemon — no
//! destructors, no flushes, the crash the durable format exists for. A
//! second daemon over the same session directory must recover every
//! parked session, and resuming each one under its *original* id must
//! produce a state fingerprint bit-identical to an uninterrupted
//! in-process run of the same scenario.
//!
//! ```text
//! serve_recovery [--sessions N] [--vcycles-before V] [--vcycles-after V]
//!                [--workers W] [--json PATH]
//! serve_recovery --serve --dir PATH [--workers W]   (internal child mode)
//! ```
//!
//! The committed baseline is BENCH_recovery.json; scripts/bench_gate.py
//! gates fresh runs with `--recovery-fresh/--recovery-baseline`
//! (recovered-session count exactly, recovery time one-sided).

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use manticore::prelude::*;
use manticore_bench::json::Val;
use manticore_bench::{fmt, reject_unknown_args, take_flag};
use manticore_serve::client::Client;
use manticore_serve::proto::{Reply, Request, ResumeReq, SubmitNetlistReq, SubmitReq};
use manticore_serve::server::{Server, ServerConfig};
use manticore_serve::wire::encode_netlist;

/// (design, poked register) — sessions cycle through these.
const DESIGNS: [(&str, &str); 4] = [
    ("counter", "count"),
    ("accum", "acc"),
    ("lfsr", "lfsr"),
    ("toggle", "edges"),
];

/// Every fifth session is submitted as an inline wire netlist instead of
/// a catalog name, so recovery's recompile-from-the-stored-netlist arm
/// is exercised alongside the catalog-lookup arm.
const WIRE_GRID: usize = 4;

enum Kind {
    Catalog(&'static str),
    Wire,
}

fn scenario(i: u64) -> (Kind, &'static str, u64) {
    let poke = (i + 1) * 13;
    if i % 5 == 4 {
        (Kind::Wire, "count", poke)
    } else {
        let (design, reg) = DESIGNS[(i as usize) % DESIGNS.len()];
        (Kind::Catalog(design), reg, poke)
    }
}

/// The design behind every wire-submitted session: the catalog counter's
/// netlist, shipped inline at [`WIRE_GRID`].
fn wire_netlist() -> manticore::netlist::Netlist {
    manticore_serve::catalog::lookup("counter", None)
        .expect("catalog counter")
        .0
}

/// Child mode: serve on an ephemeral port with a durable session
/// directory, print the port, and run until killed.
fn serve_mode(dir: PathBuf, workers: usize) -> ! {
    let cfg = ServerConfig {
        workers,
        session_dir: Some(dir),
        session_ttl: Duration::from_secs(600),
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", cfg).expect("child bind");
    // The parent parses this line; everything else goes to stderr.
    println!("PORT {}", server.local_addr().port());
    server.shutdown_when_requested();
    std::process::exit(0);
}

/// Spawns the daemon child and returns (child, addr) once it is
/// accepting — for the restarted daemon that also means every durable
/// session has been recovered, since recovery runs before the accept
/// loop starts.
fn spawn_daemon(dir: &Path, workers: usize) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .args([
            "--serve",
            "--dir",
            dir.to_str().expect("utf-8 temp dir"),
            "--workers",
            &workers.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let port: u16 = loop {
        let line = lines
            .next()
            .expect("daemon printed its port")
            .expect("readable stdout");
        if let Some(port) = line.strip_prefix("PORT ") {
            break port.trim().parse().expect("port number");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, format!("127.0.0.1:{port}").parse().expect("addr"))
}

fn expect_result(reply: Reply) -> manticore_serve::proto::JobResult {
    match reply {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

/// Ground truth: the scenario run in-process, uninterrupted.
fn direct_fingerprint(kind: &Kind, poke: (&str, u64), vcycles: u64) -> String {
    let (netlist, config) = match kind {
        Kind::Catalog(design) => {
            manticore_serve::catalog::lookup(design, None).expect("catalog design")
        }
        Kind::Wire => (
            wire_netlist(),
            MachineConfig::with_grid(WIRE_GRID, WIRE_GRID),
        ),
    };
    let fleet = FleetSim::compile_with(
        &netlist,
        &CompileOptions {
            config,
            ..Default::default()
        },
        2,
    )
    .expect("compiles");
    let job = fleet.job(vcycles).with_reg(poke.0, poke.1).expect("reg");
    let run = fleet.run(vec![job]).pop().expect("one run");
    assert!(run.result.is_ok());
    format!("{:#018x}", run.sim().machine().state_fingerprint())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        args.remove(pos);
        let dir = PathBuf::from(take_flag(&mut args, "--dir").expect("--serve needs --dir"));
        let workers: usize = take_flag(&mut args, "--workers")
            .map(|v| v.parse().expect("--workers"))
            .unwrap_or(2);
        serve_mode(dir, workers);
    }

    let sessions: u64 = take_flag(&mut args, "--sessions")
        .map(|v| v.parse().expect("--sessions"))
        .unwrap_or(8);
    let vcycles_before: u64 = take_flag(&mut args, "--vcycles-before")
        .map(|v| v.parse().expect("--vcycles-before"))
        .unwrap_or(30);
    let vcycles_after: u64 = take_flag(&mut args, "--vcycles-after")
        .map(|v| v.parse().expect("--vcycles-after"))
        .unwrap_or(70);
    let workers: usize = take_flag(&mut args, "--workers")
        .map(|v| v.parse().expect("--workers"))
        .unwrap_or(2);
    let json_path = take_flag(&mut args, "--json");
    reject_unknown_args(&args);

    let dir = std::env::temp_dir().join(format!("manticore-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Ground truth first, so nothing about the service influences it.
    let want: Vec<String> = (0..sessions)
        .map(|i| {
            let (kind, reg, poke) = scenario(i);
            direct_fingerprint(&kind, (reg, poke), vcycles_before + vcycles_after)
        })
        .collect();

    // Daemon #1: park the sessions.
    let (mut daemon, addr) = spawn_daemon(&dir, workers);
    let mut client = Client::connect(addr).expect("connect daemon");
    let mut ids = Vec::new();
    for i in 0..sessions {
        let (kind, reg, poke) = scenario(i);
        let request = match kind {
            Kind::Catalog(design) => Request::Submit(SubmitReq {
                id: i,
                design: design.into(),
                grid: None,
                vcycles: vcycles_before,
                pokes: vec![(reg.to_string(), poke)],
                reads: vec![],
                deadline_ms: None,
                park: true,
            }),
            Kind::Wire => Request::SubmitNetlist(SubmitNetlistReq {
                id: i,
                netlist: encode_netlist(&wire_netlist()),
                grid: Some(WIRE_GRID),
                vcycles: vcycles_before,
                pokes: vec![(reg.to_string(), poke)],
                reads: vec![],
                deadline_ms: None,
                park: true,
            }),
        };
        let r = expect_result(client.call(&request).expect("park call"));
        ids.push(r.session.expect("parked"));
    }

    // Background load with no replies read, so the daemon dies with its
    // pipeline full — the messy crash, not a quiesced one.
    let mut load = Client::connect(addr).expect("load conn");
    for i in 0..200u64 {
        load.send(&Request::Submit(SubmitReq {
            id: 10_000 + i,
            design: "counter".into(),
            grid: None,
            vcycles: 500,
            pokes: vec![],
            reads: vec!["count".into()],
            deadline_ms: None,
            park: false,
        }))
        .expect("load send");
    }
    std::thread::sleep(Duration::from_millis(50)); // load is mid-flight

    // SIGKILL: no Drop runs, no socket close handshake, nothing.
    daemon.kill().expect("kill daemon");
    daemon.wait().expect("reap daemon");
    drop(client);
    drop(load);

    // Daemon #2: recovery happens before the port prints, so the clock
    // covers process start + recompile + checkpoint rebinding.
    let restart = Instant::now();
    let (mut daemon2, addr2) = spawn_daemon(&dir, workers);
    let mut client = Client::connect(addr2).expect("connect restarted daemon");
    let stats = client.stats().expect("stats");
    let recovery_ms = restart.elapsed().as_secs_f64() * 1e3;
    let recovered = stats
        .get("sessions")
        .and_then(|s| s.get("recovered"))
        .and_then(manticore_serve::json::Value::as_u64)
        .expect("sessions.recovered in stats");

    // Resume every session under its original id and check bit-identity.
    let mut bit_identical: u64 = 0;
    for (i, id) in ids.iter().enumerate() {
        let r = expect_result(
            client
                .call(&Request::Resume(ResumeReq {
                    id: 20_000 + i as u64,
                    session: id.clone(),
                    vcycles: vcycles_after,
                    pokes: vec![],
                    reads: vec![],
                    park: false,
                }))
                .expect("resume call"),
        );
        if r.fingerprint == want[i] {
            bit_identical += 1;
        } else {
            eprintln!(
                "session {id}: fingerprint {} != uninterrupted {}",
                r.fingerprint, want[i]
            );
        }
    }

    // Shut the second daemon down cleanly.
    let _ = client.call(&Request::Shutdown);
    let _ = daemon2.wait();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "serve_recovery: {sessions} sessions parked, SIGKILL, {recovered} recovered in {} ms, \
         {bit_identical}/{sessions} bit-identical resumes",
        fmt(recovery_ms)
    );
    assert_eq!(recovered, sessions, "every parked session must recover");
    assert_eq!(
        bit_identical, sessions,
        "every recovered session must resume bit-identically"
    );

    if let Some(path) = json_path {
        let out = Val::obj(vec![
            ("bench", Val::Str("serve_recovery".into())),
            ("sessions", Val::Int(sessions)),
            ("vcycles_before", Val::Int(vcycles_before)),
            ("vcycles_after", Val::Int(vcycles_after)),
            ("workers", Val::Int(workers as u64)),
            ("recovered", Val::Int(recovered)),
            ("bit_identical", Val::Int(bit_identical)),
            ("recovery_ms", Val::Num(recovery_ms)),
        ]);
        manticore_bench::json::write(&path, &out);
        println!("wrote {path}");
    }
}
