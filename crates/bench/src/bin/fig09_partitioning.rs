//! Fig. 9 + Table 4: communication-aware balanced partitioning (B) vs.
//! longest-processing-time-first (L) — normalized VCPL with its
//! compute/send/NOP breakdown of the straggler core, cores used, and total
//! Send counts.
//!
//! Run: `cargo run --release -p manticore-bench --bin fig09_partitioning`

use manticore::compiler::PartitionStrategy;
use manticore::workloads;
use manticore_bench::{compile_for_grid, fmt, row};

fn main() {
    println!("# Fig. 9 / Table 4: partitioning strategies on a 15x15 grid\n");
    row(&[
        "bench".into(),
        "strategy".into(),
        "VCPL".into(),
        "VCPL/L".into(),
        "straggler compute".into(),
        "straggler send".into(),
        "straggler nop".into(),
        "cores".into(),
        "total sends".into(),
    ]);
    println!("|---|---|---|---|---|---|---|---|---|");

    for w in workloads::all() {
        let mut l_vcpl = 0f64;
        let mut l_sends = 0u64;
        let mut b_sends = 0u64;
        for (label, strategy) in [
            ("L", PartitionStrategy::Lpt),
            ("B", PartitionStrategy::Balanced),
        ] {
            let out = compile_for_grid(&w.netlist, 15, strategy);
            let vcpl = out.report.vcpl as f64;
            if label == "L" {
                l_vcpl = vcpl;
                l_sends = out.report.total_sends;
            } else {
                b_sends = out.report.total_sends;
            }
            let (_, straggler) = out.report.straggler().unwrap();
            row(&[
                w.name.into(),
                label.into(),
                fmt(vcpl),
                fmt(vcpl / l_vcpl),
                straggler.compute.to_string(),
                straggler.sends.to_string(),
                straggler.nops.to_string(),
                out.report.cores_used.to_string(),
                out.report.total_sends.to_string(),
            ]);
        }
        let saved = 100.0 * (1.0 - b_sends as f64 / l_sends.max(1) as f64);
        println!(
            "| {} | sends: L={} B={} ({:+.1}%) |",
            w.name, l_sends, b_sends, -saved
        );
    }
    println!("\nexpected shape (paper Table 4): B cuts Send counts by ~28-94% vs L and");
    println!("generally lowers VCPL while using fewer cores (jpeg collapses to a handful).");
}
