//! Table 1 + Table 7: the physical-design results — clock frequency vs.
//! grid size under automatic and guided floorplanning, and per-core FPGA
//! resources.
//!
//! These are hardware measurements in the paper; here they come from the
//! analytical model in `manticore_bench::fmax_mhz` (see DESIGN.md: the
//! mechanism — SLR crossings degrade automatic P&R, guiding recovers it —
//! is modelled, not re-measured).
//!
//! Run: `cargo run --release -p manticore-bench --bin table1_fmax`

use manticore_bench::{fmax_mhz, max_cores_u200, row, CORE_RESOURCES, TABLE1_PAPER};

fn main() {
    println!("# Table 1: clock frequency (MHz) on the U200\n");
    row(&[
        "grid".into(),
        "cores".into(),
        "auto (model)".into(),
        "guided (model)".into(),
        "auto (paper)".into(),
        "guided (paper)".into(),
    ]);
    println!("|---|---|---|---|---|---|");
    for (grid, paper_auto, paper_guided) in TABLE1_PAPER {
        row(&[
            format!("{grid}x{grid}"),
            (grid * grid).to_string(),
            format!("{:.0}", fmax_mhz(grid, false)),
            format!("{:.0}", fmax_mhz(grid, true)),
            format!("{paper_auto:.0}"),
            paper_guided.map_or("-".into(), |v| format!("{v:.0}")),
        ]);
    }

    println!("\n# Table 7: single-core resource utilization (paper's measured values)\n");
    let r = CORE_RESOURCES;
    row(&[
        "LUT".into(),
        "LUTRAM".into(),
        "FF".into(),
        "BRAM".into(),
        "URAM".into(),
        "DSP".into(),
        "SRL".into(),
    ]);
    println!("|---|---|---|---|---|---|---|");
    row(&[
        r.lut.to_string(),
        r.lutram.to_string(),
        r.ff.to_string(),
        r.bram.to_string(),
        r.uram.to_string(),
        r.dsp.to_string(),
        r.srl.to_string(),
    ]);
    println!(
        "\nURAM-bound core budget on a U200: {} cores (800 URAMs, 2/core, 4 for the cache)",
        max_cores_u200()
    );
}
