//! Fig. 6 / Fig. 11 / Fig. 12: the baseline simulator's self-relative
//! multithreaded speedup vs. thread count on all nine workloads.
//!
//! Run: `cargo run --release -p manticore-bench --bin fig06_verilator_scaling`

use manticore::refsim::{ParallelSim, SerialSim, Tape};
use manticore::workloads;
use manticore_bench::fmt;

fn main() {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .min(11);
    let threads: Vec<usize> = (1..=max_threads).collect();

    println!("# Fig. 6: baseline parallel scaling (speedup vs serial)\n");
    print!("{:>8} {:>9}", "bench", "ops/cyc");
    for t in &threads {
        print!(" {t:>6}");
    }
    println!();

    for w in workloads::all() {
        let tape = Tape::compile(&w.netlist).expect("tape");
        let cycles = w.bench_cycles;
        let mut serial = SerialSim::new(&tape);
        let s = serial.run(cycles);
        print!("{:>8} {:>9}", w.name, tape.step_size());
        for &t in &threads {
            let speedup = if t == 1 {
                1.0
            } else {
                let par = ParallelSim::new(&tape, t, 64);
                let p = par.run(cycles);
                p.stats.rate_khz() / s.rate_khz()
            };
            print!(" {:>6}", fmt(speedup));
        }
        println!();
    }
    println!("\nexpected shape (paper Fig. 6): large-step designs (vta, mc) reach ~2-4.6x;");
    println!("small-step designs (bc, blur, jpeg) run SLOWER with threads (speedup < 1).");
}
