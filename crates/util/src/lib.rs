//! Dependency-free shared utilities for the Manticore workspace.
//!
//! Two things live here because more than one crate needs them and neither
//! belongs to any single layer of the stack:
//!
//! - [`spin::SpinBarrier`] — the spinning arrive-await rendezvous used by
//!   both parallel execution engines: the Verilator-analog macro-task
//!   executor (`manticore_refsim::parallel`) and the sharded
//!   bulk-synchronous grid engine (`manticore_machine`);
//! - [`rng::SmallRng`] — a tiny deterministic PRNG (SplitMix64 seeding an
//!   xorshift64* stream) backing the seeded randomized tests across the
//!   workspace. The test suites are differential (two implementations must
//!   agree on random inputs), so reproducibility matters more than
//!   statistical sophistication: the same seed always generates the same
//!   netlist, on every platform.

pub mod rng;
pub mod spin;

pub use rng::SmallRng;
pub use spin::{spin_until, SpinBarrier};
