//! Dependency-free shared utilities for the Manticore workspace.
//!
//! These live here because more than one crate needs them and none
//! belongs to any single layer of the stack:
//!
//! - [`spin::SpinBarrier`] — the spinning arrive-await rendezvous used by
//!   both parallel execution engines: the Verilator-analog macro-task
//!   executor (`manticore_refsim::parallel`) and the sharded
//!   bulk-synchronous grid engine (`manticore_machine`);
//! - [`pool::parallel_map`] / [`pool::parallel_map_mut`] — the scoped,
//!   index-ordered worker pool behind the compiler's parallel passes:
//!   results land in pre-assigned slots, so output is bit-identical at
//!   any thread count;
//! - [`hash::FnvHasher`] — a fast non-cryptographic hasher for hot
//!   compiler maps whose keys come from the design, not from untrusted
//!   input;
//! - [`rng::SmallRng`] — a tiny deterministic PRNG (SplitMix64 seeding an
//!   xorshift64* stream) backing the seeded randomized tests across the
//!   workspace. The test suites are differential (two implementations must
//!   agree on random inputs), so reproducibility matters more than
//!   statistical sophistication: the same seed always generates the same
//!   netlist, on every platform;
//! - [`cancel::CancelToken`] — the cooperative cancellation flag every
//!   engine polls at Vcycle boundaries, and the fleet's batch fail-fast
//!   primitive;
//! - [`panic::catch_silent`] — panic containment without backtrace spam,
//!   behind the fleet's per-job isolation.

pub mod cancel;
pub mod hash;
pub mod panic;
pub mod pool;
pub mod rng;
pub mod spin;

pub use cancel::CancelToken;
pub use hash::{FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
pub use panic::{catch_silent, catch_silent_mut};
pub use pool::{parallel_map, parallel_map_mut};
pub use rng::SmallRng;
pub use spin::{spin_until, BarrierPoisoned, SpinBarrier};
