//! A deterministic scoped worker pool: `parallel_map` and
//! `parallel_map_mut` fan independent index-addressed tasks out over a
//! bounded number of scoped threads and return results **in index order**,
//! regardless of which worker ran which task or in what order tasks
//! finished.
//!
//! This is the compiler's parallelism primitive (the fleet has its own
//! long-lived work-stealing pool; the compiler wants something scoped to
//! one pass invocation with zero setup state). Determinism falls out of
//! the shape: every task writes exactly one pre-assigned output slot, so
//! the result vector is a pure function of the task function — thread
//! scheduling can only change *when* a slot is written, never *what* or
//! *where*. Callers that need bit-identical output across thread counts
//! (the pass pipeline's contract) therefore only need their per-index
//! task to be deterministic.
//!
//! With `threads <= 1` (or a single task) the map runs inline on the
//! caller's thread — no spawn, identical results — which is what the
//! reference compile pipeline uses.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A raw pointer that may cross thread boundaries. Safety is argued at the
/// use sites: workers claim disjoint indices from an atomic counter, so no
/// two threads ever touch the same element.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field access) so closures capture the
    /// whole wrapper — edition-2021 disjoint capture would otherwise grab
    /// the raw pointer field itself, which is neither `Send` nor `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Maps `f` over `0..n` on up to `threads` scoped workers, returning
/// results in index order. Inline (no threads spawned) when `threads <= 1`
/// or `n <= 1`.
///
/// Tasks are claimed one at a time from a shared atomic counter, so uneven
/// task costs self-balance (the cone-extraction profile: a few huge cones
/// among many small ones).
///
/// # Panics
///
/// Propagates a panic from `f` after all workers stop.
pub fn parallel_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let out_ptr = SendPtr(out.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                // SAFETY: `i` came from a fetch_add on a counter starting
                // at 0, so each index in 0..n is claimed by exactly one
                // worker; slot `i` is written exactly once, and `out`
                // outlives the scope.
                unsafe { *out_ptr.get().add(i) = Some(r) };
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot written by a worker"))
        .collect()
}

/// Like [`parallel_map`], but each task gets exclusive `&mut` access to
/// its element of `items` (per-process IR rewrites) and may also return a
/// value. Results come back in index order; inline when `threads <= 1` or
/// there are fewer than two items.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers stop.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let items_ptr = SendPtr(items.as_mut_ptr());
    let out_ptr = SendPtr(out.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: indices are claimed exactly once (atomic
                // counter), so the `&mut` borrows of `items[i]` and the
                // writes to `out[i]` are disjoint across workers; both
                // slices outlive the scope.
                let item = unsafe { &mut *items_ptr.get().add(i) };
                let r = f(i, item);
                unsafe { *out_ptr.get().add(i) = Some(r) };
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot written by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{parallel_map, parallel_map_mut};

    #[test]
    fn map_matches_serial_at_any_thread_count() {
        let expect: Vec<u64> = (0..257u64).map(|i| i * i + 7).collect();
        for threads in [1, 2, 3, 4, 16] {
            let got = parallel_map(257, threads, |i| (i as u64) * (i as u64) + 7);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_mut_gives_each_task_its_own_element() {
        let mut base: Vec<u32> = (0..100).collect();
        let sums = parallel_map_mut(&mut base, 4, |i, x| {
            *x += 1;
            *x as usize + i
        });
        assert_eq!(base, (1..=100).collect::<Vec<u32>>());
        assert_eq!(sums, (0..100).map(|i| 2 * i + 1).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
        let mut one = [5u8];
        assert_eq!(parallel_map_mut(&mut one, 4, |_, x| *x), vec![5]);
    }

    #[test]
    fn uneven_task_costs_balance() {
        // A few heavy tasks among many light ones: all complete, in order.
        let got = parallel_map(64, 4, |i| {
            if i % 17 == 0 {
                (0..20_000u64).fold(i as u64, |a, b| a.wrapping_add(b * b))
            } else {
                i as u64
            }
        });
        for (i, v) in got.iter().enumerate() {
            if i % 17 != 0 {
                assert_eq!(*v, i as u64);
            }
        }
    }
}
