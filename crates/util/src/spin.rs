//! A spinning barrier: the arrive-await rendezvous both parallel engines
//! use between phases. `std::sync::Barrier` parks threads on a
//! mutex/condvar, costing microseconds per rendezvous — enough to drown
//! the fine-grain synchronization effects §7.1 of the paper measures.
//! Spinning keeps the rendezvous in the hundreds-of-nanoseconds regime of
//! the paper's testbeds.
//!
//! When the host is oversubscribed (more participants than hardware
//! threads), pure spinning is pathological: the spinner burns its whole
//! scheduler quantum waiting for a peer that cannot run. After a bounded
//! number of spins the wait therefore downgrades to `yield_now`, keeping
//! the fast path allocation- and syscall-free while staying usable on
//! small CI machines.
//!
//! A spinning barrier has a failure mode `std::sync::Barrier` shares but
//! makes worse: if a participant dies (panics) between rendezvous, every
//! surviving participant spins forever. The barrier therefore carries a
//! poison flag — [`SpinBarrier::poison`], usually armed through the
//! panic-sensing [`SpinBarrier::guard`] — that wakes all waiters with an
//! error instead. A poisoned barrier stays poisoned: the protocol it was
//! synchronizing is unrecoverable once a participant is gone.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Spins this many iterations before starting to yield the CPU.
const SPIN_LIMIT: u32 = 1 << 14;

/// Spins until `cond()` returns true, downgrading to `yield_now` after a
/// bounded number of iterations. The single backoff policy for every
/// fine-grained wait in the workspace (barrier generations, macro-task
/// dependency counters).
pub fn spin_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Returned by [`SpinBarrier::wait`] when the barrier was poisoned: a
/// participant died and the rendezvous can never complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spin barrier poisoned: a participant panicked")
    }
}

impl std::error::Error for BarrierPoisoned {}

/// A reusable spinning barrier for a fixed number of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n: n.max(1),
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks (spinning) until all `n` participants arrive.
    ///
    /// # Errors
    ///
    /// [`BarrierPoisoned`] if the barrier is or becomes poisoned while
    /// waiting — a sibling participant panicked and will never arrive.
    pub fn wait(&self) -> Result<(), BarrierPoisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver resets and releases the generation. The
            // rendezvous completed, so this wait succeeds even if a
            // sibling poisons concurrently — the *next* wait will error.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            Ok(())
        } else {
            spin_until(|| {
                self.generation.load(Ordering::Acquire) != gen
                    || self.poisoned.load(Ordering::Acquire)
            });
            // A generation change means the rendezvous genuinely
            // completed: that is a success regardless of any poison that
            // raced in after it. Only an abandoned rendezvous errors.
            if self.generation.load(Ordering::Acquire) != gen {
                Ok(())
            } else {
                Err(BarrierPoisoned)
            }
        }
    }

    /// Permanently poisons the barrier, waking every current and future
    /// waiter with [`BarrierPoisoned`]. Idempotent. Deliberately does not
    /// touch the generation counter: waiters spin on the poison flag
    /// directly, and a generation bump would be indistinguishable from a
    /// completed rendezvous.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// True once [`SpinBarrier::poison`] has run.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// A drop guard that poisons the barrier if the current scope unwinds
    /// from a panic. Hold one for the lifetime of each participant:
    ///
    /// ```
    /// use manticore_util::spin::SpinBarrier;
    /// let barrier = SpinBarrier::new(1);
    /// {
    ///     let _guard = barrier.guard();
    ///     barrier.wait().unwrap();
    /// } // normal exit: barrier stays clean
    /// assert!(!barrier.is_poisoned());
    /// ```
    pub fn guard(&self) -> BarrierPanicGuard<'_> {
        BarrierPanicGuard { barrier: self }
    }
}

/// Poisons its barrier on drop *iff* the thread is panicking. See
/// [`SpinBarrier::guard`].
#[derive(Debug)]
pub struct BarrierPanicGuard<'a> {
    barrier: &'a SpinBarrier,
}

impl Drop for BarrierPanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.barrier.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SpinBarrier;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes_phases() {
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for phase in 1..=100usize {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait().unwrap();
                        // After the barrier every thread of this phase has
                        // incremented.
                        assert!(counter.load(Ordering::Relaxed) >= phase * n);
                        barrier.wait().unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100 * n);
    }

    #[test]
    fn panicking_participant_poisons_instead_of_hanging() {
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let errored = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // n-1 well-behaved participants: first rendezvous succeeds,
            // the second must error out instead of spinning forever.
            for _ in 0..n - 1 {
                s.spawn(|| {
                    let _guard = barrier.guard();
                    barrier.wait().unwrap();
                    if barrier.wait().is_err() {
                        errored.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            // The faulty participant dies between the two rendezvous; the
            // contained panic drops its guard mid-unwind, which poisons.
            s.spawn(|| {
                let died = crate::panic::catch_silent_mut(|| {
                    let _guard = barrier.guard();
                    barrier.wait().unwrap();
                    panic!("worker died mid-protocol");
                });
                assert_eq!(died.unwrap_err(), "worker died mid-protocol");
            });
        });
        assert!(barrier.is_poisoned());
        assert_eq!(
            errored.load(Ordering::Relaxed),
            n - 1,
            "every survivor must observe the poison"
        );
        // Late arrivals error immediately.
        assert!(barrier.wait().is_err());
    }

    #[test]
    fn guard_is_inert_without_a_panic() {
        let barrier = SpinBarrier::new(1);
        {
            let _guard = barrier.guard();
            barrier.wait().unwrap();
        }
        assert!(!barrier.is_poisoned());
    }
}
