//! A spinning barrier: the arrive-await rendezvous both parallel engines
//! use between phases. `std::sync::Barrier` parks threads on a
//! mutex/condvar, costing microseconds per rendezvous — enough to drown
//! the fine-grain synchronization effects §7.1 of the paper measures.
//! Spinning keeps the rendezvous in the hundreds-of-nanoseconds regime of
//! the paper's testbeds.
//!
//! When the host is oversubscribed (more participants than hardware
//! threads), pure spinning is pathological: the spinner burns its whole
//! scheduler quantum waiting for a peer that cannot run. After a bounded
//! number of spins the wait therefore downgrades to `yield_now`, keeping
//! the fast path allocation- and syscall-free while staying usable on
//! small CI machines.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Spins this many iterations before starting to yield the CPU.
const SPIN_LIMIT: u32 = 1 << 14;

/// Spins until `cond()` returns true, downgrading to `yield_now` after a
/// bounded number of iterations. The single backoff policy for every
/// fine-grained wait in the workspace (barrier generations, macro-task
/// dependency counters).
pub fn spin_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// A reusable spinning barrier for a fixed number of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n: n.max(1),
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks (spinning) until all `n` participants arrive.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver resets and releases the generation.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            spin_until(|| self.generation.load(Ordering::Acquire) != gen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SpinBarrier;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes_phases() {
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for phase in 1..=100usize {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // After the barrier every thread of this phase has
                        // incremented.
                        assert!(counter.load(Ordering::Relaxed) >= phase * n);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100 * n);
    }
}
