//! A small deterministic PRNG for seeded randomized tests.
//!
//! The workspace's randomized tests are *differential*: they generate a
//! random design or input and require two independent implementations to
//! agree on it. For that, the generator only needs to be fast, seedable,
//! and bit-reproducible across platforms — xorshift64* with SplitMix64
//! seeding is plenty, and keeps the workspace free of external
//! dependencies.

/// Deterministic xorshift64* generator with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Any seed is valid
    /// (SplitMix64 maps 0 away from the xorshift fixed point).
    pub fn seed_from_u64(seed: u64) -> Self {
        // One SplitMix64 step decorrelates consecutive seeds and avoids
        // the all-zero xorshift state.
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        SmallRng { state: z | 1 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for the
        // small spans tests use.
        range.start + (((self.next_u64() as u128 * span as u128) >> 64) as usize)
    }

    /// A random `bool` with probability 1/2.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::SmallRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for lo in 0..8usize {
            for span in 1..9usize {
                for _ in 0..200 {
                    let v = rng.gen_range(lo..lo + span);
                    assert!(v >= lo && v < lo + span);
                }
            }
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
