//! A tiny FNV-1a hasher for hot compiler maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! small key — measurable in the scheduler's link-reservation set, which
//! is probed once per route link per candidate cycle. Compiler keys are
//! small fixed-size integers derived from the design, not attacker input,
//! so FNV-1a is the right trade.
//!
//! Hash choice only affects bucket order inside the table, never the
//! observable contents, so swapping hashers preserves the compile
//! pipeline's bit-identical-output contract (no pass iterates one of
//! these maps into an output).

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, byte-at-a-time with a fast path for integer-sized writes.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        // One multiply per word instead of eight: mix the whole word.
        let mut h = self.0 ^ v;
        h = h.wrapping_mul(FNV_PRIME);
        // A final avalanche so low-entropy keys (small counters) spread.
        h ^= h >> 29;
        self.0 = h.wrapping_mul(FNV_PRIME);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`]; plug into `HashMap::with_hasher` /
/// `HashSet::with_hasher`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with [`FnvHasher`].
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` keyed with [`FnvHasher`].
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::FnvHashSet;

    #[test]
    fn set_semantics_hold() {
        let mut s: FnvHashSet<u64> = FnvHashSet::default();
        for i in 0..10_000u64 {
            assert!(s.insert(i * 2654435761));
        }
        for i in 0..10_000u64 {
            assert!(s.contains(&(i * 2654435761)));
            assert!(!s.contains(&(i * 2654435761 + 1)));
        }
        assert_eq!(s.len(), 10_000);
    }
}
