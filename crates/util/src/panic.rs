//! Panic containment: run a closure, converting a panic into an error
//! message instead of unwinding into the caller — without spamming the
//! process-wide panic hook's backtrace for panics that are *expected* to
//! be caught (injected faults, isolated worker jobs).
//!
//! `std::panic::catch_unwind` alone still runs the default hook, so every
//! contained panic would print a backtrace to stderr even though the
//! caller handles it. [`catch_silent`] suppresses the hook for panics on
//! the calling thread while it runs, delegating to the previously
//! installed hook for every other thread — so a genuine, uncontained
//! panic elsewhere in the process still reports normally.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe, UnwindSafe};
use std::sync::Once;

thread_local! {
    /// True while the current thread is inside [`catch_silent`].
    static SUPPRESS_HOOK: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics the current thread has asked to contain, and delegates to the
/// previous hook otherwise.
fn install_silencing_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS_HOOK.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

/// Extracts the human-readable message from a panic payload.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, catching any panic on this thread and returning its message
/// as `Err` — without the default hook printing a backtrace for it.
///
/// The guard is a thread-local flag, so nested calls and panics on other
/// threads behave correctly: only panics that unwind *into this call* are
/// silenced.
pub fn catch_silent<R>(f: impl FnOnce() -> R + UnwindSafe) -> Result<R, String> {
    install_silencing_hook();
    let was = SUPPRESS_HOOK.with(|s| s.replace(true));
    let result = panic::catch_unwind(f);
    SUPPRESS_HOOK.with(|s| s.set(was));
    result.map_err(payload_message)
}

/// [`catch_silent`] for closures over `&mut` state. The caller asserts
/// unwind safety: the fleet discards (or marks poisoned) any state a
/// panicking job may have half-written.
pub fn catch_silent_mut<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_silent(AssertUnwindSafe(f))
}

#[cfg(test)]
mod tests {
    use super::{catch_silent, catch_silent_mut};

    #[test]
    fn ok_path_passes_the_value_through() {
        assert_eq!(catch_silent(|| 7), Ok(7));
    }

    #[test]
    fn panic_becomes_its_message() {
        let err = catch_silent(|| -> u32 { panic!("boom {}", 3) }).unwrap_err();
        assert_eq!(err, "boom 3");
    }

    #[test]
    fn mut_state_survives_a_contained_panic() {
        let mut v = vec![1, 2];
        let err = catch_silent_mut(|| {
            v.push(3);
            panic!("mid-update");
        })
        .unwrap_err();
        assert_eq!(err, "mid-update");
        // The caller sees the half-applied update and decides what to do.
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn nested_catches_restore_suppression() {
        let outer = catch_silent_mut(|| {
            let inner = catch_silent_mut(|| -> u32 { panic!("inner") });
            assert_eq!(inner.unwrap_err(), "inner");
            panic!("outer");
        });
        assert_eq!(outer.unwrap_err(), "outer");
    }
}
