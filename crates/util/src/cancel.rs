//! Cooperative cancellation: a cheap, cloneable flag checked at safe
//! points (Vcycle boundaries, round boundaries) by long-running work.
//!
//! Cancellation here is *cooperative* and *one-way*: once a token is
//! cancelled it stays cancelled, and the work observes it only at the
//! granularity it chooses to poll. That is exactly the right contract for
//! the simulation engines — a Vcycle is the atomic unit of progress, so a
//! cancelled run always stops on a Vcycle boundary with consistent state
//! that can be checkpointed or resumed later.
//!
//! Tokens form a tree: [`CancelToken::child`] creates a token that trips
//! when *either* it or its parent is cancelled. The fleet uses this for
//! batch-level fail-fast — each batch gets a child of the caller's token,
//! so the pool can abandon a batch without cancelling the caller's wider
//! campaign, while the caller can still pull the plug on everything.
//! [`CancelToken::either`] generalizes the tree to a DAG: a token with
//! *two* parents, tripped by whichever fires first — how a fleet job
//! combines its own per-job token (e.g. "this client disconnected") with
//! the batch-wide one ("this batch was abandoned") without letting either
//! cancellation leak into the other's domain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    parents: Box<[CancelToken]>,
}

/// A cloneable cancellation flag. All clones observe the same state;
/// children additionally observe their parent.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                parents: Box::new([]),
            }),
        }
    }

    /// A child token: tripped when either it or `self` is cancelled.
    /// Cancelling the child does *not* cancel the parent.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                parents: Box::new([self.clone()]),
            }),
        }
    }

    /// A token with two parents: tripped when `a`, `b`, or itself is
    /// cancelled, whichever happens first. Cancelling the merged token
    /// does not cancel either parent. This is how a fleet job watches
    /// both its own cancellation domain (a client connection) and the
    /// batch-wide one at a single poll site.
    pub fn either(a: &CancelToken, b: &CancelToken) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                parents: Box::new([a.clone(), b.clone()]),
            }),
        }
    }

    /// Trips the token (and therefore every clone and descendant).
    /// Idempotent.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on this token,
    /// any clone of it, or any ancestor.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        self.inner.parents.iter().any(|p| p.is_cancelled())
    }

    /// A stable identity for this token's shared state: clones report the
    /// same id, distinct tokens report distinct ids. Used by the fleet's
    /// gang grouping — jobs may share a lockstep gang only when they share
    /// one cancellation domain, which is exactly "same token identity".
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::CancelToken;

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak up");

        let parent = CancelToken::new();
        let child = parent.child();
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancel propagates down");
    }

    #[test]
    fn grandchildren_observe_the_root() {
        let root = CancelToken::new();
        let leaf = root.child().child();
        root.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn either_trips_on_whichever_parent_fires_first() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let merged = CancelToken::either(&a, &b);
        assert!(!merged.is_cancelled());
        b.cancel();
        assert!(merged.is_cancelled());
        assert!(!a.is_cancelled(), "merge must not leak into a parent");

        let a = CancelToken::new();
        let b = CancelToken::new();
        let merged = CancelToken::either(&a, &b);
        a.cancel();
        assert!(merged.is_cancelled());
        assert!(!b.is_cancelled());

        // Cancelling the merged token leaks into neither parent.
        let a = CancelToken::new();
        let b = CancelToken::new();
        let merged = CancelToken::either(&a, &b);
        merged.cancel();
        assert!(!a.is_cancelled() && !b.is_cancelled());
    }

    #[test]
    fn identity_is_shared_by_clones_only() {
        let t = CancelToken::new();
        let c = t.clone();
        assert_eq!(t.id(), c.id());
        assert_ne!(t.id(), CancelToken::new().id());
        assert_ne!(t.id(), t.child().id(), "a child is a distinct domain");
    }
}
