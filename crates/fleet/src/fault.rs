//! The deterministic fault-injection plane and per-batch run policy.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultPoint`]s — "job 3 panics
//! after its 7th Vcycle", "job 0 stalls 2 ms after its 4th" — that the
//! fleet consults while executing a batch. Because every point is keyed
//! by the job's *submission index* and a *Vcycle count into that job's
//! run* (both of which are scheduling-independent), the same plan always
//! perturbs the same work at the same architectural instant, no matter
//! how many workers run the batch or how they interleave. That is what
//! makes the fault-tolerance suite differential: run clean, run injected,
//! and every surviving job must be bit-identical between the two.
//!
//! An empty plan is free: the fleet checks [`FaultPlan::is_empty`] once
//! per job and takes the exact single-`run_vcycles` path it always took.
//!
//! [`BatchPolicy`] bundles the plan with the batch-wide control plane:
//! a cooperative [`CancelToken`], a wall-clock deadline, and fail-fast
//! (first fault cancels the survivors).

use manticore_util::{CancelToken, SmallRng};

/// What an injected fault does when its point is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread executing the job panics — exercising the
    /// fleet's `catch_unwind` isolation and barrier poisoning. The job
    /// (and, for a gang, its lane-mates) reports
    /// [`crate::JobOutcome::WorkerPanic`]; the rest of the batch is
    /// unaffected.
    WorkerPanic,
    /// The worker sleeps this many milliseconds before continuing —
    /// a slow job, not a failed one. Surfaces scheduling skew (and trips
    /// deadlines) without changing any architectural result.
    Stall(u64),
    /// A spurious [`manticore_machine::MachineError::Injected`] fault is
    /// planted in the machine: the job parks exactly like a real
    /// determinism violation, and a gang parks just that lane while its
    /// siblings keep running.
    Error,
}

/// One injection: after `vcycle` completed Vcycles of job `job`'s run,
/// perform `kind`. Points at or past a job's Vcycle budget never fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Submission index of the job to perturb ([`crate::JobOutput::index`];
    /// for [`crate::Fleet::explore`], the child's global ordinal in
    /// submission order).
    pub job: usize,
    /// Completed Vcycles of that job's run after which the fault fires
    /// (0 = before its first Vcycle).
    pub vcycle: u64,
    /// What happens at the point.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults for one batch. Empty by
/// default ([`FaultPlan::none`]), in which case the fleet's execution
/// path is byte-for-byte the uninjected one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sorted by `(job, vcycle)`; resorted on every insert so builders
    /// can add points in any order.
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// The empty plan: nothing is injected, nothing is paid.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of scheduled fault points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Adds an arbitrary point.
    #[must_use]
    pub fn with(mut self, point: FaultPoint) -> FaultPlan {
        self.points.push(point);
        self.points.sort_by_key(|p| (p.job, p.vcycle));
        self
    }

    /// Schedules a worker panic on job `job` after `vcycle` of its
    /// Vcycles completed.
    #[must_use]
    pub fn panic_at(self, job: usize, vcycle: u64) -> FaultPlan {
        self.with(FaultPoint {
            job,
            vcycle,
            kind: FaultKind::WorkerPanic,
        })
    }

    /// Schedules a `millis`-long stall on job `job` at `vcycle`.
    #[must_use]
    pub fn stall_at(self, job: usize, vcycle: u64, millis: u64) -> FaultPlan {
        self.with(FaultPoint {
            job,
            vcycle,
            kind: FaultKind::Stall(millis),
        })
    }

    /// Schedules a spurious machine fault on job `job` at `vcycle`.
    #[must_use]
    pub fn error_at(self, job: usize, vcycle: u64) -> FaultPlan {
        self.with(FaultPoint {
            job,
            vcycle,
            kind: FaultKind::Error,
        })
    }

    /// A seeded random plan: `faults` points spread over `jobs` jobs and
    /// Vcycles `0..max_vcycle`, kinds drawn uniformly (stalls kept to
    /// 1–3 ms so injected suites stay fast). Same seed, same plan — the
    /// soak harness's generator.
    pub fn seeded(seed: u64, jobs: usize, max_vcycle: u64, faults: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        if jobs == 0 {
            return plan;
        }
        for _ in 0..faults {
            let job = rng.gen_range(0..jobs);
            let vcycle = rng.next_u64() % max_vcycle.max(1);
            let kind = match rng.gen_range(0..3) {
                0 => FaultKind::WorkerPanic,
                1 => FaultKind::Stall(1 + rng.next_u64() % 3),
                _ => FaultKind::Error,
            };
            plan = plan.with(FaultPoint { job, vcycle, kind });
        }
        plan
    }

    /// The points aimed at job `index`, in Vcycle order — a sub-slice of
    /// the sorted plan found by binary search, so the per-job lookup is
    /// `O(log points)` and allocation-free.
    pub fn for_job(&self, index: usize) -> &[FaultPoint] {
        let start = self.points.partition_point(|p| p.job < index);
        let end = self.points.partition_point(|p| p.job <= index);
        &self.points[start..end]
    }

    /// All points, sorted by `(job, vcycle)`.
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }
}

/// Batch-wide run controls for [`crate::Fleet::run_with`] and friends.
/// The default policy (no token, no deadline, no fail-fast, empty plan)
/// makes `run_with(jobs, &BatchPolicy::default())` identical to
/// `run(jobs)`.
#[derive(Debug, Clone, Default)]
pub struct BatchPolicy {
    /// Cooperative cancellation observed by every job at its Vcycle
    /// boundaries. The fleet never trips the caller's token itself: with
    /// `fail_fast` it derives a child token, so batch-internal
    /// cancellation stays invisible to the caller.
    pub cancel: Option<CancelToken>,
    /// Wall-clock deadline for the whole batch; jobs still running when
    /// it passes stop with [`crate::JobOutcome::Deadline`].
    pub deadline: Option<std::time::Instant>,
    /// When true, the first job that faults (or panics its worker)
    /// cancels every job still running; already-finished jobs keep their
    /// results. Cancellation is cooperative, so in-flight jobs stop at
    /// their next Vcycle boundary with [`crate::JobOutcome::Cancelled`].
    pub fail_fast: bool,
    /// The injection schedule. Empty means the untouched fast path.
    pub faults: FaultPlan,
}

impl BatchPolicy {
    /// `true` when every control is off — the policy that must cost
    /// nothing.
    pub fn is_default(&self) -> bool {
        self.cancel.is_none()
            && self.deadline.is_none()
            && !self.fail_fast
            && self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_job_slices_the_sorted_plan() {
        let plan = FaultPlan::none()
            .error_at(3, 10)
            .panic_at(1, 5)
            .stall_at(3, 2, 1)
            .error_at(7, 0);
        assert_eq!(plan.len(), 4);
        assert!(plan.for_job(0).is_empty());
        assert_eq!(plan.for_job(1).len(), 1);
        let three = plan.for_job(3);
        assert_eq!(three.len(), 2);
        assert!(three[0].vcycle < three[1].vcycle, "per-job points sorted");
        assert_eq!(plan.for_job(7).len(), 1);
        assert!(plan.for_job(8).is_empty());
    }

    #[test]
    fn seeded_plans_reproduce() {
        let a = FaultPlan::seeded(42, 16, 100, 8);
        let b = FaultPlan::seeded(42, 16, 100, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.points().iter().all(|p| p.job < 16 && p.vcycle < 100));
        assert_ne!(a, FaultPlan::seeded(43, 16, 100, 8));
    }
}
