//! Compile-once / run-many batched simulation: the fleet engine.
//!
//! Manticore's schedule is a pure function of the compiled program, which
//! the machine crate already exploits *within* one run (validate-once /
//! replay-many, fused micro-ops). This crate exploits it *across* runs:
//! one immutable [`CompiledProgram`] — replay tape and micro-op streams
//! included — is shared behind an `Arc` by *N* concurrent simulations with
//! distinct inputs and knobs, so a sweep of a thousand scenarios pays for
//! compilation, validation-schedule freezing, and micro-op lowering once
//! instead of a thousand times, and then runs the scenarios in parallel.
//!
//! The pieces:
//!
//! - [`SimJob`] — the description of one simulation: which program, the
//!   per-run input vector (register pokes applied before the first
//!   Vcycle), the engine knobs (exec mode / shard count, replay lowering,
//!   hazard strictness), and the Vcycle budget. A job can also *resume* an
//!   existing [`Machine`] ([`SimJob::resume`]), which is how a fleet
//!   drives long-running simulations in slices.
//! - [`Fleet`] — a fixed pool of worker threads driven by a work-stealing
//!   scheduler: jobs are dealt round-robin into per-worker queues, each
//!   worker drains its own queue from the front and steals from the back
//!   of victims chosen by a seeded [`SmallRng`] when it runs dry. Workers
//!   rendezvous on a [`SpinBarrier`] before the first pop so a batch
//!   starts as one front, not a stagger.
//! - [`JobOutput`] — one job's outcome plus its finished machine (final
//!   registers, counters, displays all readable). **Collection order is
//!   the submission order**, bit-for-bit independent of how workers
//!   interleaved: every job runs on a machine of its own, and its output
//!   lands in the slot indexed by its submission position.
//! - [`Fleet::run_ganged`] — the same batch API with lane batching:
//!   compatible jobs (one program, one set of engine knobs, one budget)
//!   execute K-at-a-time as lanes of a lockstep
//!   [`manticore_machine::GangMachine`], so each micro-op is fetched and
//!   decoded once per K scenarios instead of once per scenario. Outputs
//!   are bit-identical to [`Fleet::run`] and still in submission order.
//!
//! Determinism is structural, not best-effort: jobs share nothing mutable
//! (the `Arc`'d program is read-only), so scheduling can only change *when*
//! a job runs, never *what* it computes — the equivalence suite asserts
//! fleet runs are bit-identical to running each job alone.
//!
//! **Fault containment.** A batch is only as useful as its worst job, so
//! the fleet treats failure as data rather than letting it take the batch
//! down: a panicking job is caught at the worker
//! ([`manticore_util::catch_silent`]) and reported as
//! [`JobOutcome::WorkerPanic`] while its batch-mates complete; every
//! engine polls a cooperative [`manticore_util::CancelToken`] and
//! wall-clock deadline at Vcycle boundaries
//! ([`BatchPolicy`], [`SimJob::deadline`]); and a seeded [`FaultPlan`]
//! deterministically injects panics, stalls, and spurious machine faults
//! for the differential fault-tolerance suite. Every output carries a
//! typed [`JobOutcome`] saying how its run ended.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use manticore_isa::{CoreId, Reg};
pub use manticore_machine::CompiledProgram;
use manticore_machine::{
    Checkpoint, CoverageMap, ExecMode, GangMachine, Interrupt, Machine, MachineError, ReplayEngine,
    RunOutcome, MAX_LANES,
};
use manticore_util::{catch_silent_mut, CancelToken, SmallRng, SpinBarrier};
use std::sync::Arc;

mod fault;

pub use fault::{BatchPolicy, FaultKind, FaultPlan, FaultPoint};

/// The gang-compatibility key: program pointer, replay/engine/strict
/// knobs, Vcycle budget, and cancellation-domain identity.
type GangKey = (usize, u8, u8, u8, u64, usize);

/// Where a job's machine comes from: a fresh boot of a shared program, or
/// an existing run handed back to the fleet for another slice.
#[derive(Debug)]
enum JobSource {
    Fresh(Arc<CompiledProgram>),
    Resume(Box<Machine>),
}

/// The description of one simulation in a fleet batch: program, input
/// vector, engine knobs, and Vcycle budget. Knobs left unset keep the
/// machine's defaults (fresh boots) or the machine's current settings
/// (resumed runs).
#[derive(Debug)]
pub struct SimJob {
    source: JobSource,
    /// The per-run input vector: architectural register overwrites
    /// applied before execution.
    pokes: Vec<(CoreId, Reg, u16)>,
    exec_mode: Option<ExecMode>,
    replay: Option<bool>,
    engine: Option<ReplayEngine>,
    strict: Option<bool>,
    vcycles: u64,
    deadline: Option<std::time::Instant>,
    cancel: Option<CancelToken>,
}

impl SimJob {
    /// A fresh run of `program` with a budget of `vcycles` virtual cycles.
    /// The program is shared, not copied — booting the run only allocates
    /// its mutable state.
    pub fn new(program: &Arc<CompiledProgram>, vcycles: u64) -> SimJob {
        SimJob {
            source: JobSource::Fresh(Arc::clone(program)),
            pokes: Vec::new(),
            exec_mode: None,
            replay: None,
            engine: None,
            strict: None,
            vcycles,
            deadline: None,
            cancel: None,
        }
    }

    /// Resumes an existing machine for another `vcycles` — the fleet-side
    /// continuation of [`Machine::run_vcycles`]. Knobs and pokes still
    /// apply (on top of the machine's current settings).
    pub fn resume(machine: Machine, vcycles: u64) -> SimJob {
        SimJob {
            source: JobSource::Resume(Box::new(machine)),
            pokes: Vec::new(),
            exec_mode: None,
            replay: None,
            engine: None,
            strict: None,
            vcycles,
            deadline: None,
            cancel: None,
        }
    }

    /// Adds one element of the input vector: overwrite `reg` on `core`
    /// with `value` before the run starts.
    #[must_use]
    pub fn poke(mut self, core: CoreId, reg: Reg, value: u16) -> SimJob {
        self.pokes.push((core, reg, value));
        self
    }

    /// Selects the execution engine (serial, or sharded BSP with a shard
    /// count) for this job.
    #[must_use]
    pub fn exec_mode(mut self, mode: ExecMode) -> SimJob {
        self.exec_mode = Some(mode);
        self
    }

    /// Enables or disables the validate-once / replay-many fast path.
    #[must_use]
    pub fn replay(mut self, enabled: bool) -> SimJob {
        self.replay = Some(enabled);
        self
    }

    /// Selects the replay lowering (tape or fused micro-ops).
    #[must_use]
    pub fn replay_engine(mut self, engine: ReplayEngine) -> SimJob {
        self.engine = Some(engine);
        self
    }

    /// Selects strict or permissive hazard checking.
    #[must_use]
    pub fn strict_hazards(mut self, strict: bool) -> SimJob {
        self.strict = Some(strict);
        self
    }

    /// Attaches a wall-clock deadline to this job alone: the run stops
    /// cooperatively at the first Vcycle boundary past it, reporting
    /// [`JobOutcome::Deadline`]. Combines with a batch deadline
    /// ([`BatchPolicy::deadline`]) by taking whichever is earlier. A
    /// deadline'd job never joins a gang (lanes run in lockstep, so a
    /// per-lane clock cannot be honored there).
    #[must_use]
    pub fn deadline(mut self, deadline: std::time::Instant) -> SimJob {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token to this job alone: tripping it stops
    /// *this* run at the next Vcycle boundary ([`JobOutcome::Cancelled`])
    /// without touching its batch-mates — how a server cancels one
    /// client's work when that client disconnects. Combines with a batch
    /// token ([`BatchPolicy::cancel`]) so whichever trips first stops the
    /// run; neither cancellation leaks into the other's domain.
    ///
    /// Jobs carrying a token still gang, but only with jobs sharing the
    /// *same* token (same [`CancelToken::id`]) — a lockstep gang has one
    /// control plane, so it must belong to one cancellation domain.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> SimJob {
        self.cancel = Some(token);
        self
    }

    /// True when this job can join a gang: a fresh boot (no existing
    /// machine to import) on the serial engine, with no per-job deadline
    /// (the gang runs in lockstep under the batch clock only). Which gang
    /// it may join is decided by [`SimJob::gang_key`].
    fn gangable(&self) -> bool {
        matches!(self.source, JobSource::Fresh(_))
            && matches!(self.exec_mode, None | Some(ExecMode::Serial))
            && self.deadline.is_none()
    }

    /// The compatibility key for gang grouping: jobs in one gang must
    /// share the program (pointer identity), every engine knob, the
    /// Vcycle budget, and the cancellation domain (per-job token
    /// identity, 0 when none) — everything except the input vector, which
    /// is per-lane by design. Only meaningful for [`SimJob::gangable`]
    /// jobs.
    fn gang_key(&self) -> GangKey {
        let JobSource::Fresh(program) = &self.source else {
            unreachable!("gang_key is only asked of gangable jobs")
        };
        let replay = match self.replay {
            None => 0u8,
            Some(false) => 1,
            Some(true) => 2,
        };
        let engine = match self.engine {
            None => 0u8,
            Some(ReplayEngine::Tape) => 1,
            Some(ReplayEngine::MicroOps) => 2,
        };
        let strict = match self.strict {
            None => 0u8,
            Some(false) => 1,
            Some(true) => 2,
        };
        (
            Arc::as_ptr(program) as usize,
            replay,
            engine,
            strict,
            self.vcycles,
            self.cancel.as_ref().map_or(0, CancelToken::id),
        )
    }

    /// The effective cancellation token for this run: the per-job token,
    /// the batch token, or (when both are present) a two-parent merge
    /// tripped by whichever fires first.
    fn effective_cancel(&self, batch: Option<&CancelToken>) -> Option<CancelToken> {
        match (&self.cancel, batch) {
            (Some(job), Some(batch)) => Some(CancelToken::either(job, batch)),
            (Some(job), None) => Some(job.clone()),
            (None, Some(batch)) => Some(batch.clone()),
            (None, None) => None,
        }
    }

    /// Boots (or unwraps) the machine and runs the job to its budget.
    /// This is the entire per-job execution — it touches nothing shared
    /// except the read-only program, which is what makes fleet results
    /// independent of worker interleaving.
    fn execute(self, index: usize, ctx: &RunCtx<'_>) -> JobOutput {
        let cancel = self.effective_cancel(ctx.cancel);
        let mut machine = match self.source {
            JobSource::Fresh(program) => Machine::from_program(program),
            JobSource::Resume(machine) => *machine,
        };
        if let Some(strict) = self.strict {
            machine.set_strict_hazards(strict);
        }
        if let Some(mode) = self.exec_mode {
            machine.set_exec_mode(mode);
        }
        if let Some(enabled) = self.replay {
            machine.set_replay(enabled);
        }
        if let Some(engine) = self.engine {
            machine.set_replay_engine(engine);
        }
        for &(core, reg, value) in &self.pokes {
            machine.poke_reg(core, reg, value);
        }
        // Per-job deadline and batch deadline combine to the earlier one.
        let deadline = match (self.deadline, ctx.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        machine.set_cancel_token(cancel);
        machine.set_deadline(deadline);
        let result = run_solo_with_faults(&mut machine, self.vcycles, ctx.faults.for_job(index));
        // The controls belong to this batch, not to the machine the
        // caller may resume later.
        machine.set_cancel_token(None);
        machine.set_deadline(None);
        let outcome = JobOutcome::classify(&result, Some(&machine));
        JobOutput {
            index,
            outcome,
            result,
            machine: Some(machine),
        }
    }
}

/// Runs one solo machine to `budget` Vcycles, firing the job's fault
/// points at their Vcycle positions. With no points this is exactly one
/// [`Machine::run_vcycles`] call — the clean path pays nothing. With
/// points, the run is sliced at each injection Vcycle and the slice
/// outcomes are stitched back into one [`RunOutcome`], so the
/// architectural trajectory up to the fault is bit-identical to an
/// uninjected run.
fn run_solo_with_faults(
    machine: &mut Machine,
    budget: u64,
    points: &[FaultPoint],
) -> Result<RunOutcome, MachineError> {
    if points.is_empty() {
        return machine.run_vcycles(budget);
    }
    let mut acc = RunOutcome::default();
    let mut done = 0u64;
    // Stitches one slice's outcome into the accumulator; true while the
    // run should continue.
    fn merge(acc: &mut RunOutcome, slice: RunOutcome) -> bool {
        acc.vcycles_run += slice.vcycles_run;
        acc.finished |= slice.finished;
        acc.displays.extend(slice.displays);
        acc.interrupted = slice.interrupted;
        !(acc.finished || acc.interrupted.is_some())
    }
    for point in points {
        // Points at or past the budget never fire; duplicates at one
        // Vcycle all fire (the slice between them is empty).
        if point.vcycle >= budget {
            break;
        }
        let slice = point.vcycle - done;
        if slice > 0 {
            match machine.run_vcycles(slice) {
                Ok(out) => {
                    done += out.vcycles_run;
                    if !merge(&mut acc, out) {
                        return Ok(acc);
                    }
                }
                Err(e) => {
                    // Same contract as an unsliced faulting run: displays
                    // produced before the abort stay pending on the
                    // machine.
                    machine.requeue_displays(std::mem::take(&mut acc.displays));
                    return Err(e);
                }
            }
        }
        match point.kind {
            FaultKind::WorkerPanic => {
                panic!(
                    "injected worker panic: job {} at vcycle {}",
                    point.job, point.vcycle
                );
            }
            FaultKind::Stall(millis) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            FaultKind::Error => {
                machine.inject_fault(MachineError::Injected {
                    vcycle: machine.counters().vcycles,
                });
                machine.requeue_displays(std::mem::take(&mut acc.displays));
                // The machine is parked; report the planted fault.
                return Err(machine.fault().cloned().expect("fault just planted"));
            }
        }
    }
    if done < budget {
        match machine.run_vcycles(budget - done) {
            Ok(out) => {
                merge(&mut acc, out);
            }
            Err(e) => {
                machine.requeue_displays(std::mem::take(&mut acc.displays));
                return Err(e);
            }
        }
    }
    Ok(acc)
}

/// How one job's run ended — the typed summary every [`JobOutput`]
/// carries alongside the raw result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobOutcome {
    /// The design reached `$finish` within the budget.
    Complete,
    /// The Vcycle budget ran out with the design still going — resume it
    /// with [`SimJob::resume`].
    BudgetExhausted,
    /// The run stopped at a Vcycle boundary past its deadline
    /// ([`SimJob::deadline`] or [`BatchPolicy::deadline`]).
    Deadline,
    /// The run observed its [`CancelToken`] (the caller's batch token,
    /// the job's own [`SimJob::cancel_token`], or batch fail-fast) and
    /// stopped at a Vcycle boundary.
    Cancelled,
    /// The machine aborted on a [`MachineError`] — a real determinism
    /// violation, a failed assertion, or an injected
    /// [`MachineError::Injected`] fault. The parked machine is readable.
    Faulted,
    /// The worker thread executing the job panicked; the panic was
    /// contained and the rest of the batch completed. No machine state
    /// survives ([`JobOutput::machine`] is `None`).
    WorkerPanic,
}

impl JobOutcome {
    /// Derives the outcome label from a run result and (when one
    /// survived) the machine that produced it.
    fn classify(
        result: &Result<RunOutcome, MachineError>,
        machine: Option<&Machine>,
    ) -> JobOutcome {
        match result {
            Err(MachineError::WorkerPanic { .. }) => JobOutcome::WorkerPanic,
            Err(_) => JobOutcome::Faulted,
            Ok(out) => {
                if out.finished || machine.is_some_and(|m| m.finished()) {
                    JobOutcome::Complete
                } else {
                    match out.interrupted {
                        Some(Interrupt::Cancelled) => JobOutcome::Cancelled,
                        Some(Interrupt::Deadline) => JobOutcome::Deadline,
                        None => JobOutcome::BudgetExhausted,
                    }
                }
            }
        }
    }

    /// True for the outcomes that trip a fail-fast batch: the job's run
    /// is gone for a reason that was not the caller's own control plane.
    pub fn is_failure(self) -> bool {
        matches!(self, JobOutcome::Faulted | JobOutcome::WorkerPanic)
    }
}

/// One job's outcome: its submission index, the typed outcome label, the
/// run result, and the finished machine (registers, counters, and pending
/// displays readable).
#[derive(Debug)]
pub struct JobOutput {
    /// The job's position in the submitted batch — [`Fleet::run`] returns
    /// outputs sorted by this, so `outputs[i]` is always job `i`.
    pub index: usize,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// The run outcome, or the determinism violation / assertion failure
    /// that aborted it.
    pub result: Result<RunOutcome, MachineError>,
    /// The machine after the run (also the handle to continue it via
    /// [`SimJob::resume`]). `None` only when the worker executing the job
    /// panicked ([`JobOutcome::WorkerPanic`]) — unwound state is never
    /// exposed.
    pub machine: Option<Machine>,
}

impl JobOutput {
    /// The surviving machine.
    ///
    /// # Panics
    ///
    /// If the job's worker panicked ([`JobOutcome::WorkerPanic`]) — check
    /// [`JobOutput::machine`] when the batch ran under a [`FaultPlan`]
    /// that injects panics.
    pub fn machine(&self) -> &Machine {
        self.machine
            .as_ref()
            .expect("job's worker panicked: no machine state survives")
    }

    /// Consumes the output, yielding the surviving machine; panics like
    /// [`JobOutput::machine`].
    pub fn into_machine(self) -> Machine {
        self.machine
            .expect("job's worker panicked: no machine state survives")
    }
}

/// The per-batch execution context handed down to every unit: the
/// effective cancel token, the batch deadline, and the fault plan.
#[derive(Debug, Clone, Copy)]
struct RunCtx<'a> {
    cancel: Option<&'a CancelToken>,
    deadline: Option<std::time::Instant>,
    faults: &'a FaultPlan,
}

/// One schedulable unit on the worker pool: a solo job, or a gang of
/// compatible jobs executed as lanes of one [`GangMachine`].
#[derive(Debug)]
enum Unit {
    Single(usize, SimJob),
    Gang(Vec<(usize, SimJob)>),
}

impl Unit {
    /// The submission indexes of every job in this unit — captured before
    /// execution so a panicking unit can still be accounted for.
    fn job_indexes(&self) -> Vec<usize> {
        match self {
            Unit::Single(index, _) => vec![*index],
            Unit::Gang(group) => group.iter().map(|(index, _)| *index).collect(),
        }
    }

    /// Runs the unit to completion, producing one output per job in it.
    fn execute(self, ctx: &RunCtx<'_>, outs: &mut Vec<JobOutput>) {
        match self {
            Unit::Single(index, job) => outs.push(job.execute(index, ctx)),
            Unit::Gang(group) => {
                // All jobs share a gang key (program, knobs, budget); the
                // input vectors are per-lane.
                let lanes = group.len();
                let (program, vcycles, strict, replay, engine) = {
                    let job = &group[0].1;
                    let JobSource::Fresh(program) = &job.source else {
                        unreachable!("gangs are built from fresh jobs only")
                    };
                    (
                        Arc::clone(program),
                        job.vcycles,
                        job.strict,
                        job.replay,
                        job.engine,
                    )
                };
                let mut gang = GangMachine::from_program(program, lanes);
                if let Some(strict) = strict {
                    gang.set_strict_hazards(strict);
                }
                if let Some(enabled) = replay {
                    gang.set_replay(enabled);
                }
                if let Some(engine) = engine {
                    gang.set_replay_engine(engine);
                }
                for (lane, (_, job)) in group.iter().enumerate() {
                    for &(core, reg, value) in &job.pokes {
                        gang.poke_reg(lane, core, reg, value);
                    }
                }
                // All lanes share one cancellation domain (the gang key
                // includes the token identity), so lane 0's effective
                // token is the whole gang's.
                gang.set_cancel_token(group[0].1.effective_cancel(ctx.cancel));
                gang.set_deadline(ctx.deadline);
                // Lane -> submission index, for routing per-lane fault
                // points.
                let lane_jobs: Vec<usize> = group.iter().map(|(index, _)| *index).collect();
                let results = run_gang_with_faults(&mut gang, vcycles, &lane_jobs, ctx.faults);
                gang.set_cancel_token(None);
                gang.set_deadline(None);
                let machines = gang.into_machines();
                for (((index, _), result), machine) in group.iter().zip(results).zip(machines) {
                    let outcome = JobOutcome::classify(&result, Some(&machine));
                    outs.push(JobOutput {
                        index: *index,
                        outcome,
                        result,
                        machine: Some(machine),
                    });
                }
            }
        }
    }
}

/// Runs a gang to `budget` Vcycles, firing its member jobs' fault points
/// at their (lockstep) Vcycle positions. With no points this is exactly
/// one [`GangMachine::run_vcycles`] call. With points, the lockstep run
/// is sliced at each injection Vcycle: an [`FaultKind::Error`] parks just
/// the targeted lane (its siblings keep running — PR 5's lane-masking
/// semantics extended to injected faults), a stall delays the whole gang
/// (lockstep has one clock), and a panic unwinds the worker (the
/// caller's `catch_unwind` turns the whole gang into
/// [`JobOutcome::WorkerPanic`] outputs).
///
/// `lane_jobs` maps lanes to submitted job indexes: lane `l` runs job
/// `lane_jobs[l]`.
fn run_gang_with_faults(
    gang: &mut GangMachine,
    budget: u64,
    lane_jobs: &[usize],
    faults: &FaultPlan,
) -> Vec<Result<RunOutcome, MachineError>> {
    let lanes = lane_jobs.len();
    // Collect this gang's points as (vcycle, lane, kind), lockstep order.
    let mut points: Vec<(u64, usize, FaultKind)> = Vec::new();
    for (lane, &index) in lane_jobs.iter().enumerate() {
        for p in faults.for_job(index) {
            if p.vcycle < budget {
                points.push((p.vcycle, lane, p.kind));
            }
        }
    }
    if points.is_empty() {
        return gang.run_vcycles(budget);
    }
    points.sort_by_key(|&(vcycle, lane, _)| (vcycle, lane));

    let mut acc: Vec<Result<RunOutcome, MachineError>> =
        (0..lanes).map(|_| Ok(RunOutcome::default())).collect();
    // Stitch one slice's per-lane results into the accumulator. A lane
    // that erred in an earlier slice keeps its first error (the gang
    // re-reports recorded faults on every call).
    let merge = |acc: &mut Vec<Result<RunOutcome, MachineError>>,
                 gang: &mut GangMachine,
                 slice: Vec<Result<RunOutcome, MachineError>>|
     -> bool {
        let mut any_live = false;
        for (lane, res) in slice.into_iter().enumerate() {
            match (&mut acc[lane], res) {
                (Ok(a), Ok(s)) => {
                    a.vcycles_run += s.vcycles_run;
                    a.finished |= s.finished;
                    a.displays.extend(s.displays);
                    a.interrupted = s.interrupted;
                    if !(a.finished || a.interrupted.is_some()) {
                        any_live = true;
                    }
                }
                (slot @ Ok(_), Err(e)) => {
                    // First error on this lane: displays it accumulated in
                    // earlier slices go back to the lane's pending queue,
                    // like an unsliced faulting run.
                    let Ok(a) = slot else { unreachable!() };
                    gang.requeue_displays(lane, std::mem::take(&mut a.displays));
                    *slot = Err(e);
                }
                (Err(_), _) => {}
            }
        }
        any_live
    };

    let mut done = 0u64;
    for &(vcycle, lane, kind) in &points {
        let slice = vcycle - done;
        if slice > 0 {
            let res = gang.run_vcycles(slice);
            done = vcycle;
            if !merge(&mut acc, gang, res) {
                return acc;
            }
        }
        match kind {
            FaultKind::WorkerPanic => {
                panic!(
                    "injected worker panic: job {} at vcycle {vcycle}",
                    lane_jobs[lane]
                );
            }
            FaultKind::Stall(millis) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            FaultKind::Error => {
                gang.park_lane(
                    lane,
                    MachineError::Injected {
                        vcycle: gang.counters(lane).vcycles,
                    },
                );
            }
        }
    }
    if done < budget {
        let res = gang.run_vcycles(budget - done);
        merge(&mut acc, gang, res);
    }
    acc
}

/// A fixed-size worker pool executing [`SimJob`] batches with
/// work-stealing. See the crate docs for the scheduling discipline and
/// the determinism argument.
#[derive(Debug, Clone)]
pub struct Fleet {
    workers: usize,
}

impl Fleet {
    /// A fleet of `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Fleet {
        Fleet {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job in the batch and returns the outputs **in
    /// submission order** — `outputs[i]` belongs to `jobs[i]`, regardless
    /// of which worker executed it or when.
    ///
    /// Jobs are dealt round-robin into per-worker queues; a worker pops
    /// its own queue from the front (preserving submission locality) and,
    /// when dry, steals from the back of victims visited in a seeded
    /// pseudo-random order. A batch smaller than the pool simply leaves
    /// the surplus workers stealing nothing.
    pub fn run(&self, jobs: Vec<SimJob>) -> Vec<JobOutput> {
        self.run_with(jobs, &BatchPolicy::default())
    }

    /// [`Fleet::run`] under a [`BatchPolicy`]: cooperative cancellation,
    /// a batch deadline, fail-fast, and/or a deterministic [`FaultPlan`].
    /// With the default policy this is exactly [`Fleet::run`].
    pub fn run_with(&self, jobs: Vec<SimJob>, policy: &BatchPolicy) -> Vec<JobOutput> {
        let n = jobs.len();
        let units = jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| Unit::Single(index, job))
            .collect();
        collect_in_order(n, |sink| self.run_units(units, policy, sink))
    }

    /// [`Fleet::run_with`], streaming: every [`JobOutput`] is handed to
    /// `sink` **as its job finishes**, in completion order, instead of
    /// being held until the batch barrier. `sink` is called from worker
    /// threads (hence `Sync`) and must be cheap — it runs on the worker's
    /// time. Outputs carry their [`JobOutput::index`], so a caller that
    /// wants submission order can reorder; a caller that wants latency
    /// (a server streaming results to clients as they land, a frontier
    /// loop scoring children while their siblings still run) consumes
    /// them as they come. The results themselves are bit-identical to
    /// [`Fleet::run_with`] — streaming changes *when* an output is
    /// observable, never what it contains.
    pub fn run_stream(
        &self,
        jobs: Vec<SimJob>,
        policy: &BatchPolicy,
        sink: &(dyn Fn(JobOutput) + Sync),
    ) {
        let units = jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| Unit::Single(index, job))
            .collect();
        self.run_units(units, policy, sink);
    }

    /// Like [`Fleet::run`], but batches compatible jobs into gangs of up
    /// to `lanes` lanes: fresh serial-engine jobs sharing one program,
    /// identical engine knobs, and one Vcycle budget execute in lockstep
    /// on a [`GangMachine`] — every micro-op fetched and decoded once for
    /// the whole gang. Jobs that cannot gang (resumed machines, the
    /// sharded engine, or a gang of one) run exactly as [`Fleet::run`]
    /// would run them.
    ///
    /// Outputs are bit-identical to the ungganged path and still arrive
    /// in submission order — ganging changes scheduling, never results
    /// (`tests/gang_equivalence.rs` holds this to full-regfile
    /// fingerprints).
    pub fn run_ganged(&self, jobs: Vec<SimJob>, lanes: usize) -> Vec<JobOutput> {
        self.run_ganged_with(jobs, lanes, &BatchPolicy::default())
    }

    /// [`Fleet::run_ganged`] under a [`BatchPolicy`] — see
    /// [`Fleet::run_with`]. An [`FaultKind::Error`] aimed at a ganged job
    /// parks just that lane; its lane-mates run to completion.
    pub fn run_ganged_with(
        &self,
        jobs: Vec<SimJob>,
        lanes: usize,
        policy: &BatchPolicy,
    ) -> Vec<JobOutput> {
        let n = jobs.len();
        collect_in_order(n, |sink| self.run_ganged_stream(jobs, lanes, policy, sink))
    }

    /// [`Fleet::run_ganged_with`], streaming — the lane-batched
    /// counterpart of [`Fleet::run_stream`]. A gang's outputs are emitted
    /// together when the gang finishes (lanes run in lockstep, so they
    /// finish together); solo jobs stream individually.
    pub fn run_ganged_stream(
        &self,
        jobs: Vec<SimJob>,
        lanes: usize,
        policy: &BatchPolicy,
        sink: &(dyn Fn(JobOutput) + Sync),
    ) {
        if lanes <= 1 {
            return self.run_stream(jobs, policy, sink);
        }
        // A gang machine holds at most MAX_LANES lanes; wider requests
        // simply open another gang (never truncate a group against a
        // silently-clamped machine).
        let lanes = lanes.min(manticore_machine::MAX_LANES);
        let mut units: Vec<Unit> = Vec::new();
        // Open (not yet full) gang per compatibility key, as an index
        // into `units`. Scanning in submission order keeps the grouping
        // deterministic for any job set.
        let mut open: HashMap<GangKey, usize> = HashMap::new();
        for (index, job) in jobs.into_iter().enumerate() {
            if !job.gangable() {
                units.push(Unit::Single(index, job));
                continue;
            }
            match open.entry(job.gang_key()) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    let slot = *entry.get();
                    let Unit::Gang(group) = &mut units[slot] else {
                        unreachable!("open gangs index gang units")
                    };
                    group.push((index, job));
                    if group.len() == lanes {
                        entry.remove();
                    }
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(units.len());
                    units.push(Unit::Gang(vec![(index, job)]));
                }
            }
        }
        // A gang of one gains nothing from the lane machinery; demote it
        // to the plain per-job path.
        for unit in &mut units {
            if let Unit::Gang(group) = unit {
                if group.len() == 1 {
                    let (index, job) = group.pop().expect("len checked");
                    *unit = Unit::Single(index, job);
                }
            }
        }
        self.run_units(units, policy, sink);
    }

    /// The worker pool proper: deals `units` round-robin and runs them
    /// with work-stealing, handing each produced output to `sink` the
    /// moment its unit finishes. Each unit executes under `catch_unwind`:
    /// a panicking job (injected or genuine) yields
    /// [`JobOutcome::WorkerPanic`] outputs for the unit's jobs and the
    /// worker moves on to its next unit — the batch always emits exactly
    /// one output per job.
    fn run_units(&self, units: Vec<Unit>, policy: &BatchPolicy, sink: &(dyn Fn(JobOutput) + Sync)) {
        if units.is_empty() {
            return;
        }
        let workers = self.workers.min(units.len());

        // The effective cancel token: fail-fast needs one to trip, and a
        // caller token must never be tripped by the fleet itself — so
        // fail-fast on top of a caller token derives a child.
        let cancel: Option<CancelToken> = match (&policy.cancel, policy.fail_fast) {
            (Some(token), false) => Some(token.clone()),
            (Some(token), true) => Some(token.child()),
            (None, true) => Some(CancelToken::new()),
            (None, false) => None,
        };
        let ctx = RunCtx {
            cancel: cancel.as_ref(),
            deadline: policy.deadline,
            faults: &policy.faults,
        };
        let fail_fast = policy.fail_fast;

        // Deal units round-robin.
        let mut queues: Vec<VecDeque<Unit>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (at, unit) in units.into_iter().enumerate() {
            queues[at % workers].push_back(unit);
        }
        let queues: Vec<Mutex<VecDeque<Unit>>> = queues.into_iter().map(Mutex::new).collect();

        let start = SpinBarrier::new(workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let start = &start;
                scope.spawn(move || {
                    // Align the batch start: no worker races ahead while
                    // its peers are still being spawned. The guard keeps a
                    // worker that somehow dies here from stranding its
                    // peers at the rendezvous.
                    let _guard = start.guard();
                    if start.wait().is_err() {
                        return;
                    }
                    let mut rng = SmallRng::seed_from_u64(w as u64);
                    loop {
                        // Own queue first, front-out (submission order).
                        let task = queues[w].lock().unwrap().pop_front();
                        let task = match task {
                            Some(t) => Some(t),
                            // Dry: steal from the *back* of a victim,
                            // taking the work its owner would reach last.
                            // The visit order is randomized per attempt so
                            // stealers spread over victims; every queue is
                            // still visited each sweep, so an empty sweep
                            // proves the batch is fully claimed (jobs
                            // never enqueue new jobs).
                            None => {
                                let offset = rng.gen_range(0..workers);
                                (0..workers)
                                    .map(|i| (offset + i) % workers)
                                    .filter(|&v| v != w)
                                    .find_map(|v| queues[v].lock().unwrap().pop_back())
                            }
                        };
                        match task {
                            Some(unit) => {
                                // Capture the unit's job indexes before it
                                // is consumed, so a panic can still be
                                // pinned to its jobs.
                                let indexes = unit.job_indexes();
                                let mut outs = Vec::new();
                                let panicked =
                                    catch_silent_mut(|| unit.execute(&ctx, &mut outs)).err();
                                let mut failed = false;
                                let mut produced = vec![false; indexes.len()];
                                for output in outs {
                                    failed |= output.outcome.is_failure();
                                    if let Some(at) =
                                        indexes.iter().position(|&i| i == output.index)
                                    {
                                        produced[at] = true;
                                    }
                                    sink(output);
                                }
                                // A panic mid-unit: every job the unit did
                                // not get to report becomes a structured
                                // WorkerPanic output.
                                if let Some(message) = panicked {
                                    failed = true;
                                    for (&index, _) in
                                        indexes.iter().zip(&produced).filter(|(_, &done)| !done)
                                    {
                                        sink(JobOutput {
                                            index,
                                            outcome: JobOutcome::WorkerPanic,
                                            result: Err(MachineError::WorkerPanic {
                                                message: message.clone(),
                                            }),
                                            machine: None,
                                        });
                                    }
                                }
                                if fail_fast && failed {
                                    if let Some(token) = ctx.cancel {
                                        token.cancel();
                                    }
                                }
                            }
                            None => break,
                        }
                    }
                });
            }
        });
    }
}

/// Drives a streaming run and collects its outputs back into
/// submission-order slots — how the batch APIs are built on the streaming
/// one. `n` is the number of submitted jobs; the run must emit exactly
/// one output per job.
fn collect_in_order(n: usize, run: impl FnOnce(&(dyn Fn(JobOutput) + Sync))) -> Vec<JobOutput> {
    let slots: Vec<Mutex<Option<JobOutput>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run(&|output: JobOutput| {
        let index = output.index;
        *slots[index].lock().unwrap() = Some(output);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every submitted job produces exactly one output")
        })
        .collect()
}

/// Configuration for [`Fleet::explore`]: the shape of the scenario tree
/// and the stimulus to fuzz.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Fork width: children per frontier checkpoint per round (clamped to
    /// `1..=`[`MAX_LANES`]).
    pub lanes: usize,
    /// Exploration rounds (tree depth beyond the warm-up).
    pub rounds: usize,
    /// Vcycles each forked child runs before it is scored.
    pub vcycles_per_round: u64,
    /// Vcycles the root runs before the first checkpoint (past the
    /// validation Vcycle, so every fork resumes on the replay path).
    pub warmup_vcycles: u64,
    /// Most frontier checkpoints kept between rounds — the knob that
    /// keeps exploration memory flat regardless of tree depth.
    pub frontier_cap: usize,
    /// PRNG seed for the fuzzed stimulus; same seed, same tree.
    pub seed: u64,
    /// Registers to fuzz on each forked child, as `(core, reg, mask)`
    /// word triples: each child gets an independent random value, ANDed
    /// with `mask` (so out-of-width bits of a wide RTL register are never
    /// injected).
    pub stimulus: Vec<(CoreId, Reg, u16)>,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            lanes: 8,
            rounds: 16,
            vcycles_per_round: 25,
            warmup_vcycles: 2,
            frontier_cap: 4,
            seed: 0,
            stimulus: Vec::new(),
        }
    }
}

/// What a [`Fleet::explore`] run did and found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Forked child scenarios executed.
    pub scenarios: u64,
    /// Rounds actually run (short of `rounds` only when every child of a
    /// round finished or faulted, leaving nothing to fork).
    pub rounds_run: usize,
    /// Toggle-covered register bits over the whole grid at the end
    /// ([`CoverageMap::covered_bits`]).
    pub covered_bits: u64,
    /// Largest frontier held between rounds (never exceeds
    /// `frontier_cap`).
    pub frontier_peak: usize,
    /// `$display` lines produced across all children.
    pub displays: u64,
    /// Children that aborted on a failed assertion.
    pub asserts: u64,
    /// Children that aborted on any other [`MachineError`] (injected
    /// faults included).
    pub faults: u64,
    /// Children whose design reached `$finish`.
    pub finished: u64,
    /// Children lost to a worker panic: their whole gang unwound, so they
    /// were neither scored nor kept — the rest of the round's frontier
    /// stayed deterministic without them. Always 0 without a
    /// panic-injecting [`FaultPlan`].
    pub killed: u64,
    /// `Some` when the exploration stopped early on the batch policy's
    /// cancel token or deadline (checked between rounds, never inside
    /// one, so every completed round is exactly the round an uninterrupted
    /// run would have produced).
    pub interrupted: Option<Interrupt>,
}

impl Fleet {
    /// Coverage-guided scenario-tree exploration: repeatedly checkpoint
    /// frontier states, fork each into a gang of children with fuzzed
    /// per-lane stimulus, run the gangs across the worker pool, and keep
    /// the children that raise toggle coverage as the next frontier
    /// (padding with the round's earliest still-running children when too
    /// few raise it; see [`CoverageMap`]).
    ///
    /// Fully deterministic for a given `(program, config)`: stimulus is
    /// drawn serially in submission order before any gang runs, gang
    /// results are merged in submission order, and the simulator itself is
    /// deterministic — worker count and scheduling cannot change the tree.
    /// Memory stays flat in tree depth: live state is bounded by
    /// `frontier_cap` checkpoints plus one round of gangs.
    ///
    /// Children that fault (a failed assertion is *interesting*, not
    /// fatal) or finish are scored and counted but leave the frontier.
    ///
    /// # Errors
    ///
    /// Only the root warm-up can fail ([`Machine::run_vcycles`] on the
    /// unforked root); child faults are data, tallied in the report.
    pub fn explore(
        &self,
        program: &Arc<CompiledProgram>,
        cfg: &ExploreConfig,
    ) -> Result<ExploreReport, MachineError> {
        self.explore_with(program, cfg, &BatchPolicy::default())
    }

    /// [`Fleet::explore`] under a [`BatchPolicy`]. Cancellation and the
    /// deadline are honored *between* rounds only — inside a round the
    /// tree must stay a pure function of `(program, config)`, so every
    /// completed round is exactly what an uninterrupted run would have
    /// produced. [`FaultPlan`] points address children by their global
    /// submission ordinal (round by round, frontier order, lane order):
    /// an injected error parks that child (tallied in
    /// [`ExploreReport::faults`], like a real fault), and an injected
    /// panic loses the child's whole gang ([`ExploreReport::killed`])
    /// while the frontier deterministically continues from the surviving
    /// gangs.
    pub fn explore_with(
        &self,
        program: &Arc<CompiledProgram>,
        cfg: &ExploreConfig,
        policy: &BatchPolicy,
    ) -> Result<ExploreReport, MachineError> {
        let lanes = cfg.lanes.clamp(1, MAX_LANES);
        let cap = cfg.frontier_cap.max(1);
        let mut report = ExploreReport::default();
        let mut coverage = CoverageMap::for_program(program);

        let mut root = Machine::from_program(Arc::clone(program));
        if cfg.warmup_vcycles > 0 {
            root.run_vcycles(cfg.warmup_vcycles)?;
        }
        coverage.observe(&root);
        let mut frontier: Vec<Checkpoint> = vec![root.checkpoint()];
        report.frontier_peak = 1;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Global child ordinal in submission order — the job index a
        // FaultPlan addresses.
        let mut next_child: usize = 0;

        for _ in 0..cfg.rounds {
            // The round boundary is the only interruption point; see the
            // method docs for why.
            let stop = if policy.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                Some(Interrupt::Cancelled)
            } else if policy
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                Some(Interrupt::Deadline)
            } else {
                None
            };
            if let Some(stop) = stop {
                report.interrupted = Some(stop);
                break;
            }

            // Fork the frontier and draw every lane's stimulus serially,
            // in frontier order, so the tree is independent of worker
            // scheduling.
            let mut gangs: Vec<GangMachine> = Vec::with_capacity(frontier.len());
            for cp in &frontier {
                let mut gang = cp.fork(lanes)?;
                for lane in 0..lanes {
                    for &(core, reg, mask) in &cfg.stimulus {
                        gang.poke_reg(lane, core, reg, (rng.next_u64() as u16) & mask);
                    }
                }
                gangs.push(gang);
            }
            let round_base = next_child;
            next_child += gangs.len() * lanes;

            // Run the round's gangs across the worker pool. Workers send
            // each finished gang down a channel the moment it completes;
            // the merge below consumes them *as they finish*, holding
            // early finishers in a reorder buffer so scoring still
            // happens in submission order (the tree stays a pure function
            // of `(program, config)`) while later gangs are still
            // running. A gang whose worker panics (injected faults only —
            // the simulator itself returns errors) is recorded as lost,
            // not resultless.
            let n = gangs.len();
            let vcycles = cfg.vcycles_per_round.max(1);
            enum GangSlot {
                Done(GangMachine, Vec<Result<RunOutcome, MachineError>>),
                Lost,
            }
            let queue: Mutex<Vec<(usize, GangMachine)>> =
                Mutex::new(gangs.into_iter().enumerate().rev().collect());
            let workers = self.workers.min(n);
            let faults = &policy.faults;
            report.rounds_run += 1;
            let mut raisers: Vec<Checkpoint> = Vec::new();
            let mut pad: Vec<Checkpoint> = Vec::new();
            let (tx, rx) = std::sync::mpsc::channel::<(usize, GangSlot)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let queue = &queue;
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        let task = queue.lock().unwrap().pop();
                        match task {
                            Some((i, mut gang)) => {
                                let filled = if faults.is_empty() {
                                    let results = gang.run_vcycles(vcycles);
                                    GangSlot::Done(gang, results)
                                } else {
                                    // Children of gang i are ordinals
                                    // round_base + i*lanes + lane.
                                    let base = round_base + i * lanes;
                                    let lane_jobs: Vec<usize> =
                                        (0..lanes).map(|lane| base + lane).collect();
                                    catch_silent_mut(|| {
                                        let results = run_gang_with_faults(
                                            &mut gang, vcycles, &lane_jobs, faults,
                                        );
                                        (gang, results)
                                    })
                                    .map(|(gang, results)| GangSlot::Done(gang, results))
                                    .unwrap_or(GangSlot::Lost)
                                };
                                if tx.send((i, filled)).is_err() {
                                    break;
                                }
                            }
                            None => break,
                        }
                    });
                }
                // The workers hold the clones; dropping the original lets
                // the receive loop end when the last worker exits.
                drop(tx);

                // Merge in submission order as gangs finish: score every
                // child against the shared map, keep coverage-raisers for
                // the next frontier, pad with the round's earliest
                // still-running children.
                let mut pending: std::collections::BTreeMap<usize, GangSlot> =
                    std::collections::BTreeMap::new();
                let mut next_gang = 0usize;
                for (i, slot) in rx {
                    pending.insert(i, slot);
                    while let Some(slot) = pending.remove(&next_gang) {
                        next_gang += 1;
                        let (gang, results) = match slot {
                            GangSlot::Done(gang, results) => (gang, results),
                            GangSlot::Lost => {
                                report.killed += lanes as u64;
                                continue;
                            }
                        };
                        for (machine, result) in gang.into_machines().into_iter().zip(results) {
                            report.scenarios += 1;
                            let newly = coverage.observe(&machine);
                            let running = match &result {
                                Ok(outcome) => {
                                    coverage.record_events(outcome.displays.len() as u64, 0);
                                    if outcome.finished {
                                        report.finished += 1;
                                    }
                                    !outcome.finished
                                }
                                Err(MachineError::AssertFailed { .. }) => {
                                    coverage.record_events(0, 1);
                                    report.asserts += 1;
                                    false
                                }
                                Err(_) => {
                                    report.faults += 1;
                                    false
                                }
                            };
                            if !running {
                                continue;
                            }
                            if newly > 0 && raisers.len() < cap {
                                raisers.push(machine.checkpoint());
                            } else if pad.len() < cap {
                                pad.push(machine.checkpoint());
                            }
                        }
                    }
                }
                assert_eq!(next_gang, n, "every gang produces a result");
            });
            let mut next = raisers;
            for cp in pad {
                if next.len() >= cap {
                    break;
                }
                next.push(cp);
            }
            if next.is_empty() {
                // Every child finished or faulted: the tree is exhausted.
                break;
            }
            report.frontier_peak = report.frontier_peak.max(next.len());
            frontier = next;
        }
        report.covered_bits = coverage.covered_bits();
        report.displays = coverage.displays;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manticore_isa::{AluOp, Binary, CoreImage, Instruction, MachineConfig};

    /// A 1×1 counter program: `r1 += r2` once per Vcycle.
    fn counter_program() -> Arc<CompiledProgram> {
        let binary = Binary {
            grid_width: 1,
            grid_height: 1,
            vcycle_len: 4,
            cores: vec![CoreImage {
                core: CoreId::new(0, 0),
                body: vec![Instruction::Alu {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(1),
                    rs2: Reg(2),
                }],
                epilogue_len: 0,
                custom_functions: vec![],
                init_regs: vec![(Reg(1), 0), (Reg(2), 1)],
                init_scratch: vec![],
            }],
            exceptions: vec![],
            init_dram: vec![],
        };
        // Short pipeline so the write at position 0 commits inside the
        // 4-cycle Vcycle (the default 14-stage latency would make the
        // next Vcycle's read a hazard).
        let config = MachineConfig {
            hazard_latency: 2,
            ..MachineConfig::with_grid(1, 1)
        };
        CompiledProgram::compile_shared(config, &binary).unwrap()
    }

    #[test]
    fn outputs_arrive_in_submission_order_for_any_worker_count() {
        let program = counter_program();
        for workers in [1, 2, 3, 8] {
            let fleet = Fleet::new(workers);
            // Distinct input vectors: job i counts in steps of i+1.
            let jobs: Vec<SimJob> = (0..13)
                .map(|i| SimJob::new(&program, 10).poke(CoreId::new(0, 0), Reg(2), (i + 1) as u16))
                .collect();
            let outputs = fleet.run(jobs);
            assert_eq!(outputs.len(), 13);
            for (i, out) in outputs.iter().enumerate() {
                assert_eq!(out.index, i);
                let run = out.result.as_ref().unwrap();
                assert_eq!(run.vcycles_run, 10);
                assert_eq!(
                    out.machine().read_reg(CoreId::new(0, 0), Reg(1)),
                    (10 * (i + 1)) as u16,
                    "job {i} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn resume_continues_where_the_batch_left_off() {
        let program = counter_program();
        let fleet = Fleet::new(2);
        let first = fleet.run(vec![SimJob::new(&program, 3)]);
        let machine = first.into_iter().next().unwrap().into_machine();
        assert_eq!(machine.read_reg(CoreId::new(0, 0), Reg(1)), 3);
        let second = fleet.run(vec![SimJob::resume(machine, 4)]);
        assert_eq!(
            second[0].machine().read_reg(CoreId::new(0, 0), Reg(1)),
            7,
            "resumed run continues the same state"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(Fleet::new(4).run(Vec::new()).is_empty());
        assert!(Fleet::new(4).run_ganged(Vec::new(), 8).is_empty());
    }

    #[test]
    fn oversized_gang_requests_split_instead_of_truncating() {
        // More compatible jobs than a gang machine can hold: the width
        // clamps to MAX_LANES and the surplus opens further gangs — every
        // job still produces its own correct output.
        let program = counter_program();
        let core = CoreId::new(0, 0);
        let n = manticore_machine::MAX_LANES + 7;
        let jobs: Vec<SimJob> = (0..n)
            .map(|i| SimJob::new(&program, 5).poke(core, Reg(2), (i + 1) as u16))
            .collect();
        let outputs = Fleet::new(2).run_ganged(jobs, n);
        assert_eq!(outputs.len(), n);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.index, i);
            assert_eq!(out.machine().read_reg(core, Reg(1)), (5 * (i + 1)) as u16);
        }
    }

    #[test]
    fn ganged_run_matches_solo_run_for_mixed_job_sets() {
        let program = counter_program();
        let core = CoreId::new(0, 0);
        // A deliberately lumpy set: three gangable groups (two budgets x
        // two engines) plus one non-gangable sharded job, interleaved.
        let make_jobs = || -> Vec<SimJob> {
            (0..11)
                .map(|i| {
                    let vcycles = if i % 2 == 0 { 10 } else { 7 };
                    let mut job = SimJob::new(&program, vcycles).poke(core, Reg(2), (i + 1) as u16);
                    if i % 5 == 3 {
                        job = job.exec_mode(ExecMode::Parallel { shards: 1 });
                    }
                    if i % 3 == 0 {
                        job = job.replay_engine(ReplayEngine::Tape);
                    }
                    job
                })
                .collect()
        };
        let reference = Fleet::new(1).run(make_jobs());
        for lanes in [2, 4, 8] {
            let ganged = Fleet::new(2).run_ganged(make_jobs(), lanes);
            assert_eq!(ganged.len(), reference.len());
            for (out, re) in ganged.iter().zip(&reference) {
                assert_eq!(out.index, re.index, "lanes {lanes}: submission order");
                assert_eq!(
                    out.machine().read_reg(core, Reg(1)),
                    re.machine().read_reg(core, Reg(1)),
                    "lanes {lanes}: job {} diverged from the solo path",
                    out.index
                );
                assert_eq!(
                    out.machine().counters(),
                    re.machine().counters(),
                    "lanes {lanes}: job {} counters diverged",
                    out.index
                );
            }
        }
    }

    #[test]
    fn explore_is_deterministic_across_worker_counts() {
        let program = counter_program();
        let cfg = ExploreConfig {
            lanes: 4,
            rounds: 3,
            vcycles_per_round: 5,
            warmup_vcycles: 2,
            frontier_cap: 2,
            seed: 0xdead,
            stimulus: vec![(CoreId::new(0, 0), Reg(2), 0x00ff)],
        };
        let reference = Fleet::new(1).explore(&program, &cfg).unwrap();
        // The counter design never finishes or faults, so every round
        // forks a full frontier: 1 gang in round 1, `frontier_cap` after.
        assert_eq!(reference.rounds_run, 3);
        assert_eq!(
            reference.scenarios,
            (cfg.lanes + (cfg.rounds - 1) * cfg.frontier_cap * cfg.lanes) as u64
        );
        assert_eq!(reference.asserts + reference.faults + reference.finished, 0);
        assert!(reference.frontier_peak <= cfg.frontier_cap);
        assert!(reference.covered_bits > 0, "fuzzing r2 must toggle bits");
        for workers in [2, 4] {
            assert_eq!(
                Fleet::new(workers).explore(&program, &cfg).unwrap(),
                reference,
                "{workers} workers: exploration tree diverged"
            );
        }
        // A different seed is still a well-formed tree of the same shape
        // (the tiny counter design may coincidentally cover the same bit
        // set, so only the shape is asserted).
        let reseeded = Fleet::new(2)
            .explore(
                &program,
                &ExploreConfig {
                    seed: 1,
                    ..cfg.clone()
                },
            )
            .unwrap();
        assert_eq!(reseeded.scenarios, reference.scenarios);
        assert_eq!(reseeded.rounds_run, reference.rounds_run);
    }

    #[test]
    fn one_program_many_runs_share_the_artifact() {
        let program = counter_program();
        let outputs =
            Fleet::new(4).run((0..8).map(|_| SimJob::new(&program, 5)).collect::<Vec<_>>());
        for out in &outputs {
            // Every run executes the same shared artifact...
            assert!(Arc::ptr_eq(out.machine().program(), &program));
            // ...and none of them perturbs another.
            assert_eq!(out.machine().read_reg(CoreId::new(0, 0), Reg(1)), 5);
        }
        // 8 runs + the original handle + the machines' handles all alias
        // one compilation.
        assert!(Arc::strong_count(&program) >= 9);
    }

    #[test]
    fn worker_count_clamps_to_at_least_one() {
        assert_eq!(Fleet::new(0).workers(), 1);
        // ...and a zero-worker request still executes a batch.
        let program = counter_program();
        let outputs = Fleet::new(0).run(vec![SimJob::new(&program, 4)]);
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].outcome, JobOutcome::BudgetExhausted);
        assert_eq!(outputs[0].machine().read_reg(CoreId::new(0, 0), Reg(1)), 4);
    }

    #[test]
    fn resumed_faulted_machine_reports_faulted_without_rerunning() {
        let program = counter_program();
        let fleet = Fleet::new(2);
        let mut machine = fleet
            .run(vec![SimJob::new(&program, 3)])
            .into_iter()
            .next()
            .unwrap()
            .into_machine();
        machine.inject_fault(MachineError::Injected { vcycle: 3 });
        let vcycles_before = machine.counters().vcycles;
        let out = fleet
            .run(vec![SimJob::resume(machine, 10)])
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(out.outcome, JobOutcome::Faulted);
        assert!(matches!(
            out.result,
            Err(MachineError::Injected { vcycle: 3 })
        ));
        assert_eq!(
            out.machine().counters().vcycles,
            vcycles_before,
            "a parked machine must not execute further Vcycles"
        );
    }

    #[test]
    fn injected_panic_is_contained_to_its_job() {
        let program = counter_program();
        let core = CoreId::new(0, 0);
        let policy = BatchPolicy {
            faults: FaultPlan::none().panic_at(2, 3),
            ..BatchPolicy::default()
        };
        for workers in [1, 4] {
            let jobs: Vec<SimJob> = (0..6)
                .map(|i| SimJob::new(&program, 8).poke(core, Reg(2), (i + 1) as u16))
                .collect();
            let outputs = Fleet::new(workers).run_with(jobs, &policy);
            assert_eq!(outputs.len(), 6);
            for (i, out) in outputs.iter().enumerate() {
                assert_eq!(out.index, i);
                if i == 2 {
                    assert_eq!(out.outcome, JobOutcome::WorkerPanic);
                    assert!(out.machine.is_none());
                    assert!(matches!(out.result, Err(MachineError::WorkerPanic { .. })));
                } else {
                    assert_eq!(out.outcome, JobOutcome::BudgetExhausted);
                    assert_eq!(
                        out.machine().read_reg(core, Reg(1)),
                        (8 * (i + 1)) as u16,
                        "job {i}: survivors must be identical to a clean run"
                    );
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_batch_stops_every_job_before_its_first_vcycle() {
        let program = counter_program();
        let token = CancelToken::new();
        token.cancel();
        let policy = BatchPolicy {
            cancel: Some(token),
            ..BatchPolicy::default()
        };
        let jobs: Vec<SimJob> = (0..4).map(|_| SimJob::new(&program, 50)).collect();
        for outputs in [
            Fleet::new(2).run_with((0..4).map(|_| SimJob::new(&program, 50)).collect(), &policy),
            Fleet::new(2).run_ganged_with(jobs, 4, &policy),
        ] {
            for out in &outputs {
                assert_eq!(out.outcome, JobOutcome::Cancelled);
                assert_eq!(out.result.as_ref().unwrap().vcycles_run, 0);
            }
        }
    }

    #[test]
    fn expired_deadline_reports_deadline_deterministically() {
        let program = counter_program();
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        // Per-job deadline...
        let out = Fleet::new(1)
            .run(vec![SimJob::new(&program, 50).deadline(past)])
            .pop()
            .unwrap();
        assert_eq!(out.outcome, JobOutcome::Deadline);
        assert_eq!(out.result.as_ref().unwrap().vcycles_run, 0);
        // ...and batch deadline, which also stops gangs.
        let policy = BatchPolicy {
            deadline: Some(past),
            ..BatchPolicy::default()
        };
        let outputs = Fleet::new(2).run_ganged_with(
            (0..4).map(|_| SimJob::new(&program, 50)).collect(),
            4,
            &policy,
        );
        for out in &outputs {
            assert_eq!(out.outcome, JobOutcome::Deadline);
            assert_eq!(out.result.as_ref().unwrap().vcycles_run, 0);
        }
    }

    #[test]
    fn fail_fast_cancels_the_survivors_without_tripping_the_caller_token() {
        let program = counter_program();
        let caller = CancelToken::new();
        let policy = BatchPolicy {
            cancel: Some(caller.clone()),
            fail_fast: true,
            // Job 0 faults immediately; with one worker the remaining
            // jobs observe the cancellation before they start.
            faults: FaultPlan::none().error_at(0, 0),
            ..BatchPolicy::default()
        };
        let jobs: Vec<SimJob> = (0..5).map(|_| SimJob::new(&program, 1_000)).collect();
        let outputs = Fleet::new(1).run_with(jobs, &policy);
        assert_eq!(outputs[0].outcome, JobOutcome::Faulted);
        for out in &outputs[1..] {
            assert_eq!(out.outcome, JobOutcome::Cancelled);
            assert_eq!(out.result.as_ref().unwrap().vcycles_run, 0);
        }
        assert!(
            !caller.is_cancelled(),
            "fail-fast must trip a child token, never the caller's"
        );
    }

    #[test]
    fn per_job_cancel_stops_only_that_job() {
        let program = counter_program();
        let core = CoreId::new(0, 0);
        let token = CancelToken::new();
        token.cancel();
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| {
                let job = SimJob::new(&program, 6).poke(core, Reg(2), (i + 1) as u16);
                if i == 1 {
                    job.cancel_token(token.clone())
                } else {
                    job
                }
            })
            .collect();
        let outputs = Fleet::new(2).run(jobs);
        for (i, out) in outputs.iter().enumerate() {
            if i == 1 {
                assert_eq!(out.outcome, JobOutcome::Cancelled);
                assert_eq!(out.result.as_ref().unwrap().vcycles_run, 0);
            } else {
                assert_eq!(out.outcome, JobOutcome::BudgetExhausted, "job {i}");
                assert_eq!(out.machine().read_reg(core, Reg(1)), (6 * (i + 1)) as u16);
            }
        }
    }

    #[test]
    fn gangs_never_cross_cancellation_domains() {
        // Jobs 0–1 share a tripped token; jobs 2–3 share a live one. If
        // grouping ignored token identity, all four would join one gang
        // whose single control plane would cancel the live pair too.
        let program = counter_program();
        let core = CoreId::new(0, 0);
        let dead = CancelToken::new();
        dead.cancel();
        let live = CancelToken::new();
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| {
                let token = if i < 2 { &dead } else { &live };
                SimJob::new(&program, 5)
                    .poke(core, Reg(2), (i + 1) as u16)
                    .cancel_token(token.clone())
            })
            .collect();
        let outputs = Fleet::new(2).run_ganged(jobs, 4);
        for (i, out) in outputs.iter().enumerate() {
            if i < 2 {
                assert_eq!(out.outcome, JobOutcome::Cancelled, "job {i}");
                assert_eq!(out.result.as_ref().unwrap().vcycles_run, 0);
            } else {
                assert_eq!(out.outcome, JobOutcome::BudgetExhausted, "job {i}");
                assert_eq!(out.machine().read_reg(core, Reg(1)), (5 * (i + 1)) as u16);
            }
        }
    }

    #[test]
    fn streaming_delivers_every_output_with_results_identical_to_run() {
        let program = counter_program();
        let core = CoreId::new(0, 0);
        let make_jobs = || -> Vec<SimJob> {
            (0..9)
                .map(|i| SimJob::new(&program, 7).poke(core, Reg(2), (i + 1) as u16))
                .collect()
        };
        let reference = Fleet::new(1).run(make_jobs());
        for workers in [1, 3] {
            let streamed: Mutex<Vec<JobOutput>> = Mutex::new(Vec::new());
            Fleet::new(workers).run_stream(make_jobs(), &BatchPolicy::default(), &|out| {
                streamed.lock().unwrap().push(out)
            });
            let mut streamed = streamed.into_inner().unwrap();
            assert_eq!(streamed.len(), reference.len());
            // Completion order may differ from submission order; the
            // index on each output recovers it.
            streamed.sort_by_key(|out| out.index);
            for (out, re) in streamed.iter().zip(&reference) {
                assert_eq!(out.index, re.index);
                assert_eq!(
                    out.machine().read_reg(core, Reg(1)),
                    re.machine().read_reg(core, Reg(1)),
                    "{workers} workers: streamed job {} diverged",
                    out.index
                );
            }
        }
        // The ganged streamer delivers the same set too.
        let streamed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        Fleet::new(2).run_ganged_stream(make_jobs(), 4, &BatchPolicy::default(), &|out| {
            streamed.lock().unwrap().push(out.index)
        });
        let mut indexes = streamed.into_inner().unwrap();
        indexes.sort_unstable();
        assert_eq!(indexes, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_outputs_arrive_before_later_jobs_run() {
        // One worker executes jobs in submission order; the sink sees job
        // 0's output before job 1 has run at all — the opposite of the
        // old batch barrier, which held everything to the end.
        let program = counter_program();
        let seen = Mutex::new(Vec::new());
        Fleet::new(1).run_stream(
            (0..3).map(|_| SimJob::new(&program, 4)).collect(),
            &BatchPolicy::default(),
            &|out| seen.lock().unwrap().push(out.index),
        );
        assert_eq!(seen.into_inner().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn injected_gang_fault_parks_one_lane_and_its_siblings_survive() {
        let program = counter_program();
        let core = CoreId::new(0, 0);
        let policy = BatchPolicy {
            faults: FaultPlan::none().error_at(1, 4),
            ..BatchPolicy::default()
        };
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| SimJob::new(&program, 10).poke(core, Reg(2), (i + 1) as u16))
            .collect();
        let outputs = Fleet::new(2).run_ganged_with(jobs, 4, &policy);
        for (i, out) in outputs.iter().enumerate() {
            if i == 1 {
                assert_eq!(out.outcome, JobOutcome::Faulted);
                assert!(matches!(
                    out.result,
                    Err(MachineError::Injected { vcycle: 4 })
                ));
                // The lane froze at the injection point.
                assert_eq!(out.machine().read_reg(core, Reg(1)), (4 * (i + 1)) as u16);
            } else {
                assert_eq!(out.outcome, JobOutcome::BudgetExhausted);
                assert_eq!(
                    out.machine().read_reg(core, Reg(1)),
                    (10 * (i + 1)) as u16,
                    "lane {i} must run to its full budget"
                );
            }
        }
    }
}
