#!/usr/bin/env python3
"""Bench regression gate for the perf trajectory.

Compares a fresh `table3_performance --json` run against the committed
baseline (`BENCH_table3.json`) within a relative tolerance, and fails the
build when any compared metric drifts out of band — e.g. a 2x slowdown of
a replay lowering.

What is compared, and why:

- per-row (matched by workload name) `vcpl`, `cores_used`, and
  `manticore_khz`: deterministic compiler/model outputs, so any drift at
  all is a real change (the tolerance merely keeps float rendering
  honest);
- `geomean.replay_vs_interp`, `geomean.uop_vs_interp`,
  `geomean.uop_vs_replay`: the measured engine-speedup ratios that the
  committed baseline tracks per PR. Geomeans over the nine workloads are
  stable to a few percent between runs on one host; the per-row measured
  kHz columns are NOT compared because single-workload wall-clock ratios
  can legitimately wobble past 25% on shared CI runners.

With `--fleet-fresh`/`--fleet-baseline`, the gate additionally compares
the fleet_throughput gang section: `gang.geomean_gang_vs_fleet` (the
lane-batched gang engine's scenarios/sec over the one-machine-per-
scenario fleet at equal worker count) within the same tolerance, plus
the gang geometry (`lanes`, `workers`, `vcycles`) exactly — a geometry
drift would make the ratio incomparable, not just noisy. Per-workload
gang ratios are in the JSON for inspection but, like the per-row kHz
columns, are not gated.

With `--explore-fresh`/`--explore-baseline`, the gate additionally
compares the explore_throughput run: the tree geometry (`lanes`,
`rounds`, `vcycles`, `frontier`, `seed`) exactly, the per-workload
`scenarios` and `covered_bits` exactly (exploration is deterministic for
a fixed seed — stimulus is drawn serially in submission order — so any
drift at all is a behavior change, not noise), and
`geomean_scenarios_per_sec` within the tolerance.

With `--compile-fresh`/`--compile-baseline`, the gate additionally
compares the table8_compile_times run: the sweep geometry (`threads`,
`heavy_passes`) exactly; per row, the grid/nets/split sizes and every
per-pass `ir_size` exactly (these are deterministic compiler outputs —
a drift is a behavior change, and a thread-count-dependent IR size
would break the bit-identity contract); and the heavy-pass speedup
geomeans (`geomean.heavy_speedup_t2/t4`, `geomean.soc_heavy_speedup_t4`)
as ONE-SIDED floors — a fresh run only fails when it falls below
`baseline * (1 - tolerance)`, never for being faster, since speedups
are the thing being protected, not pinned. `soc_heavy_speedup_t4`
additionally has the absolute acceptance floor of 1.8x: the parallel
pass pipeline must stay at least 1.8x faster than the serial reference
on the 16x16 SoC's heavy passes regardless of baseline drift.

With `--serve-fresh`/`--serve-baseline`, the gate additionally compares
a serve_soak run: the load geometry (`conns`, `vcycles`, `workers`,
`lanes`) exactly — job count may differ, since CI smokes at 10^3 jobs
against the committed 10^5-job baseline, and throughput/hit-rate/RSS
bounds all hold at either scale; `cache_misses` exactly (the compile
count equals the design count by construction — one extra miss means
the cache or its single-flight dedup broke, not noise);
`cache_hit_rate` against the absolute 0.90 acceptance floor;
`geomean_jobs_per_sec` as a one-sided floor vs the baseline; and
`rss_growth` against the absolute 1.10 flatness ceiling (final RSS
within 10% of the post-warm-up plateau — a leaky server fails here).

With `--recovery-fresh`/`--recovery-baseline`, the gate additionally
compares a serve_recovery crash-recovery run: the scenario geometry
(`sessions`, `vcycles_before`, `vcycles_after`, `workers`) exactly;
`recovered` and `bit_identical` exactly equal to `sessions` (recovery
and determinism are all-or-nothing — a single lost or diverged session
is a durability bug, not noise); and `recovery_ms` as a one-sided
CEILING — a fresh run fails only when restart-to-recovered exceeds
`max(baseline * (1 + tolerance), 1000 ms)`. The absolute 1 s grace
exists because the committed baseline is tens of milliseconds, where
the relative band is narrower than scheduler noise on shared runners;
what the gate protects against is recovery becoming accidentally
quadratic or synchronous-per-session, not a 5 ms wobble.

Intentional perf changes (either direction, beyond tolerance) are landed
by regenerating the committed baseline(s) in the same PR.

Usage: bench_gate.py FRESH.json BASELINE.json [--tolerance 0.25]
                     [--fleet-fresh FLEET.json --fleet-baseline BENCH_fleet.json]
                     [--explore-fresh EXPLORE.json --explore-baseline BENCH_explore.json]
                     [--compile-fresh COMPILE.json --compile-baseline BENCH_compile.json]
                     [--serve-fresh SERVE.json --serve-baseline BENCH_serve.json]
                     [--recovery-fresh RECOVERY.json --recovery-baseline BENCH_recovery.json]
"""

import argparse
import json
import sys

PER_ROW = ["vcpl", "cores_used", "manticore_khz"]
GEOMEAN = ["replay_vs_interp", "uop_vs_interp", "uop_vs_replay"]


def check(label, fresh, base, tolerance, failures):
    if base is None or fresh is None:
        failures.append(f"{label}: missing value (fresh={fresh}, baseline={base})")
        return
    if base == 0:
        ok = fresh == 0
        drift = float("inf") if not ok else 0.0
    else:
        drift = abs(fresh - base) / abs(base)
        ok = drift <= tolerance
    status = "ok" if ok else "FAIL"
    print(f"  {status:>4}  {label:<32} baseline {base:>12.3f}  fresh {fresh:>12.3f}  drift {drift * 100:6.1f}%")
    if not ok:
        failures.append(f"{label}: {base:.3f} -> {fresh:.3f} ({drift * 100:.1f}% > {tolerance * 100:.0f}%)")


def check_fleet(fresh_path, base_path, tolerance, failures):
    with open(fresh_path) as f:
        fresh = json.load(f).get("gang", {})
    with open(base_path) as f:
        base = json.load(f).get("gang", {})
    if not base:
        failures.append(f"{base_path}: no gang section in the fleet baseline")
        return
    print("fleet gang section:")
    for field in ("lanes", "workers", "vcycles"):
        if fresh.get(field) != base.get(field):
            failures.append(
                f"gang.{field}: geometry changed ({base.get(field)} -> {fresh.get(field)}); "
                "ratios are not comparable — regenerate BENCH_fleet.json"
            )
    check(
        "gang.geomean_gang_vs_fleet",
        fresh.get("geomean_gang_vs_fleet"),
        base.get("geomean_gang_vs_fleet"),
        tolerance,
        failures,
    )


def check_explore(fresh_path, base_path, tolerance, failures):
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)
    print("explore section:")
    for field in ("lanes", "rounds", "vcycles", "frontier", "seed"):
        if fresh.get(field) != base.get(field):
            failures.append(
                f"explore.{field}: tree geometry changed ({base.get(field)} -> {fresh.get(field)}); "
                "rates are not comparable — regenerate BENCH_explore.json"
            )
    base_rows = {r["name"]: r for r in base.get("rows", [])}
    fresh_rows = {r["name"]: r for r in fresh.get("rows", [])}
    missing = sorted(set(base_rows) - set(fresh_rows))
    if missing:
        failures.append(f"workloads missing from fresh explore run: {', '.join(missing)}")
    for name, brow in sorted(base_rows.items()):
        frow = fresh_rows.get(name)
        if frow is None:
            continue
        # Deterministic tree outputs: compared exactly (tolerance 0).
        for field in ("scenarios", "covered_bits"):
            if frow.get(field) != brow.get(field):
                failures.append(
                    f"explore.{name}.{field}: {brow.get(field)} -> {frow.get(field)} "
                    "(exploration is deterministic — this is a behavior change, not noise)"
                )
            else:
                print(f"    ok  explore.{name}.{field:<24} {brow.get(field)}")
    check(
        "explore.geomean_scenarios_per_sec",
        fresh.get("geomean_scenarios_per_sec"),
        base.get("geomean_scenarios_per_sec"),
        tolerance,
        failures,
    )


SOC_HEAVY_SPEEDUP_FLOOR = 1.8


def check_floor(label, fresh, base, tolerance, failures, absolute_floor=None):
    """One-sided gate for speedup ratios: fail only below the floor."""
    if fresh is None or base is None:
        failures.append(f"{label}: missing value (fresh={fresh}, baseline={base})")
        return
    floor = base * (1 - tolerance)
    if absolute_floor is not None:
        floor = max(floor, absolute_floor)
    ok = fresh >= floor
    status = "ok" if ok else "FAIL"
    print(f"  {status:>4}  {label:<32} baseline {base:>12.3f}  fresh {fresh:>12.3f}  floor {floor:8.3f}")
    if not ok:
        failures.append(f"{label}: {fresh:.3f} below floor {floor:.3f} (baseline {base:.3f})")


def check_compile(fresh_path, base_path, tolerance, failures):
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)
    print("compile section:")
    for field in ("threads", "heavy_passes"):
        if fresh.get(field) != base.get(field):
            failures.append(
                f"compile.{field}: sweep geometry changed ({base.get(field)} -> {fresh.get(field)}); "
                "speedups are not comparable — regenerate BENCH_compile.json"
            )
    base_rows = {r["name"]: r for r in base.get("rows", [])}
    fresh_rows = {r["name"]: r for r in fresh.get("rows", [])}
    missing = sorted(set(base_rows) - set(fresh_rows))
    if missing:
        failures.append(f"workloads missing from fresh compile run: {', '.join(missing)}")
    for name, brow in sorted(base_rows.items()):
        frow = fresh_rows.get(name)
        if frow is None:
            continue
        # Deterministic compiler outputs: compared exactly (tolerance 0).
        for field in ("grid", "nets", "split_v", "split_e"):
            if frow.get(field) != brow.get(field):
                failures.append(
                    f"compile.{name}.{field}: {brow.get(field)} -> {frow.get(field)} "
                    "(deterministic compiler output — this is a behavior change, not noise)"
                )
        bsizes = {p["name"]: p["ir_size"] for p in brow.get("passes", [])}
        fsizes = {p["name"]: p["ir_size"] for p in frow.get("passes", [])}
        if bsizes != fsizes:
            diffs = sorted(
                set(bsizes.items()) ^ set(fsizes.items()) | {(k, None) for k in set(bsizes) ^ set(fsizes)}
            )
            failures.append(
                f"compile.{name}: per-pass IR sizes changed ({diffs}) "
                "(deterministic — regenerate the baseline if intentional)"
            )
        else:
            print(f"    ok  compile.{name}.ir_sizes{'':<14} {len(fsizes)} passes exact")
    # Speedup geomeans: one-sided floors (a faster compiler never fails).
    for field in ("heavy_speedup_t2", "heavy_speedup_t4"):
        check_floor(
            f"compile.geomean.{field}",
            fresh.get("geomean", {}).get(field),
            base.get("geomean", {}).get(field),
            tolerance,
            failures,
        )
    check_floor(
        "compile.geomean.soc_heavy_speedup_t4",
        fresh.get("geomean", {}).get("soc_heavy_speedup_t4"),
        base.get("geomean", {}).get("soc_heavy_speedup_t4"),
        tolerance,
        failures,
        absolute_floor=SOC_HEAVY_SPEEDUP_FLOOR,
    )


SERVE_HIT_RATE_FLOOR = 0.90
SERVE_RSS_GROWTH_CEILING = 1.10


def check_serve(fresh_path, base_path, tolerance, failures):
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)
    print("serve section:")
    # Job count may legitimately differ (CI smokes at a lower --jobs);
    # everything gated below is scale-independent. The rest of the load
    # geometry must match for the throughput floor to mean anything.
    for field in ("conns", "vcycles", "workers", "lanes"):
        if fresh.get(field) != base.get(field):
            failures.append(
                f"serve.{field}: load geometry changed ({base.get(field)} -> {fresh.get(field)}); "
                "rates are not comparable — regenerate BENCH_serve.json"
            )
    # The compile count is deterministic: one miss per catalog design,
    # every later job a hit. Any extra miss is a cache/single-flight
    # regression, not noise.
    if fresh.get("cache_misses") != base.get("cache_misses"):
        failures.append(
            f"serve.cache_misses: {base.get('cache_misses')} -> {fresh.get('cache_misses')} "
            "(compiles are deterministic — the program cache or its dedup broke)"
        )
    else:
        print(f"    ok  serve.cache_misses{'':<13} {fresh.get('cache_misses')} exact")
    hit_rate = fresh.get("cache_hit_rate")
    if hit_rate is None or hit_rate < SERVE_HIT_RATE_FLOOR:
        failures.append(
            f"serve.cache_hit_rate: {hit_rate} below the {SERVE_HIT_RATE_FLOOR} acceptance floor"
        )
    else:
        print(f"    ok  serve.cache_hit_rate{'':<11} {hit_rate:.4f} >= {SERVE_HIT_RATE_FLOOR}")
    # Throughput: one-sided — a faster server never fails the gate.
    check_floor(
        "serve.geomean_jobs_per_sec",
        fresh.get("geomean_jobs_per_sec"),
        base.get("geomean_jobs_per_sec"),
        tolerance,
        failures,
    )
    rss_growth = fresh.get("rss_growth")
    if rss_growth is None or rss_growth > SERVE_RSS_GROWTH_CEILING:
        failures.append(
            f"serve.rss_growth: {rss_growth} over the {SERVE_RSS_GROWTH_CEILING} flatness "
            "ceiling (final RSS must stay within 10% of the warm plateau)"
        )
    else:
        print(f"    ok  serve.rss_growth{'':<14} {rss_growth:.3f} <= {SERVE_RSS_GROWTH_CEILING}")


RECOVERY_MS_GRACE = 1000.0


def check_recovery(fresh_path, base_path, tolerance, failures):
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)
    print("recovery section:")
    for field in ("sessions", "vcycles_before", "vcycles_after", "workers"):
        if fresh.get(field) != base.get(field):
            failures.append(
                f"recovery.{field}: scenario geometry changed ({base.get(field)} -> {fresh.get(field)}); "
                "recovery times are not comparable — regenerate BENCH_recovery.json"
            )
    # All-or-nothing: every parked session recovers, every resume is
    # bit-identical. One short is a durability bug, not noise.
    sessions = fresh.get("sessions")
    for field in ("recovered", "bit_identical"):
        if fresh.get(field) != sessions:
            failures.append(
                f"recovery.{field}: {fresh.get(field)} of {sessions} sessions "
                "(crash recovery is all-or-nothing — this is a durability bug)"
            )
        else:
            print(f"    ok  recovery.{field:<22} {fresh.get(field)}/{sessions}")
    # Latency: one-sided ceiling. Fast recovery never fails; the grace
    # floor keeps a tens-of-ms baseline from gating on scheduler noise.
    fresh_ms = fresh.get("recovery_ms")
    base_ms = base.get("recovery_ms")
    if fresh_ms is None or base_ms is None:
        failures.append(
            f"recovery.recovery_ms: missing value (fresh={fresh_ms}, baseline={base_ms})"
        )
        return
    ceiling = max(base_ms * (1 + tolerance), RECOVERY_MS_GRACE)
    ok = fresh_ms <= ceiling
    status = "ok" if ok else "FAIL"
    print(
        f"  {status:>4}  {'recovery.recovery_ms':<32} baseline {base_ms:>12.3f}  "
        f"fresh {fresh_ms:>12.3f}  ceiling {ceiling:8.3f}"
    )
    if not ok:
        failures.append(
            f"recovery.recovery_ms: {fresh_ms:.1f} ms over the {ceiling:.1f} ms ceiling "
            f"(baseline {base_ms:.1f} ms)"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="JSON from the fresh table3_performance run")
    ap.add_argument("baseline", help="committed baseline (BENCH_table3.json)")
    ap.add_argument("--tolerance", type=float, default=0.25, help="relative tolerance (default 0.25)")
    ap.add_argument("--fleet-fresh", help="JSON from the fresh fleet_throughput run")
    ap.add_argument("--fleet-baseline", help="committed fleet baseline (BENCH_fleet.json)")
    ap.add_argument("--explore-fresh", help="JSON from the fresh explore_throughput run")
    ap.add_argument("--explore-baseline", help="committed explore baseline (BENCH_explore.json)")
    ap.add_argument("--compile-fresh", help="JSON from the fresh table8_compile_times run")
    ap.add_argument("--compile-baseline", help="committed compile baseline (BENCH_compile.json)")
    ap.add_argument("--serve-fresh", help="JSON from the fresh serve_soak run")
    ap.add_argument("--serve-baseline", help="committed serve baseline (BENCH_serve.json)")
    ap.add_argument("--recovery-fresh", help="JSON from the fresh serve_recovery run")
    ap.add_argument("--recovery-baseline", help="committed recovery baseline (BENCH_recovery.json)")
    args = ap.parse_args()
    if bool(args.fleet_fresh) != bool(args.fleet_baseline):
        ap.error("--fleet-fresh and --fleet-baseline must be given together "
                 "(one alone would silently skip the gang gate)")
    if bool(args.explore_fresh) != bool(args.explore_baseline):
        ap.error("--explore-fresh and --explore-baseline must be given together "
                 "(one alone would silently skip the exploration gate)")
    if bool(args.compile_fresh) != bool(args.compile_baseline):
        ap.error("--compile-fresh and --compile-baseline must be given together "
                 "(one alone would silently skip the compile gate)")
    if bool(args.serve_fresh) != bool(args.serve_baseline):
        ap.error("--serve-fresh and --serve-baseline must be given together "
                 "(one alone would silently skip the serve gate)")
    if bool(args.recovery_fresh) != bool(args.recovery_baseline):
        ap.error("--recovery-fresh and --recovery-baseline must be given together "
                 "(one alone would silently skip the recovery gate)")

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    failures = []
    base_rows = {r["name"]: r for r in base.get("rows", [])}
    fresh_rows = {r["name"]: r for r in fresh.get("rows", [])}

    missing = sorted(set(base_rows) - set(fresh_rows))
    if missing:
        failures.append(f"workloads missing from fresh run: {', '.join(missing)}")

    print(f"bench gate: tolerance ±{args.tolerance * 100:.0f}%")
    for name, brow in sorted(base_rows.items()):
        frow = fresh_rows.get(name)
        if frow is None:
            continue
        for field in PER_ROW:
            check(f"{name}.{field}", frow.get(field), brow.get(field), args.tolerance, failures)
    for field in GEOMEAN:
        check(
            f"geomean.{field}",
            fresh.get("geomean", {}).get(field),
            base.get("geomean", {}).get(field),
            args.tolerance,
            failures,
        )

    if args.fleet_fresh and args.fleet_baseline:
        check_fleet(args.fleet_fresh, args.fleet_baseline, args.tolerance, failures)
    if args.explore_fresh and args.explore_baseline:
        check_explore(args.explore_fresh, args.explore_baseline, args.tolerance, failures)
    if args.compile_fresh and args.compile_baseline:
        check_compile(args.compile_fresh, args.compile_baseline, args.tolerance, failures)
    if args.serve_fresh and args.serve_baseline:
        check_serve(args.serve_fresh, args.serve_baseline, args.tolerance, failures)
    if args.recovery_fresh and args.recovery_baseline:
        check_recovery(args.recovery_fresh, args.recovery_baseline, args.tolerance, failures)

    if failures:
        print(f"\nbench gate FAILED ({len(failures)} violation(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print(
            "\nIf this change is intentional, regenerate the baseline(s):\n"
            "  cargo run --release -p manticore-bench --bin table3_performance -- --json BENCH_table3.json\n"
            "  cargo run --release -p manticore-bench --bin fleet_throughput -- --json BENCH_fleet.json\n"
            "  cargo run --release -p manticore-bench --bin explore_throughput -- --json BENCH_explore.json\n"
            "  cargo run --release -p manticore-bench --bin table8_compile_times -- --json BENCH_compile.json\n"
            "  cargo run --release -p manticore-bench --bin serve_soak -- --json BENCH_serve.json\n"
            "  cargo run --release -p manticore-bench --bin serve_recovery -- --json BENCH_recovery.json",
            file=sys.stderr,
        )
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
