/root/repo/target/release/deps/manticore_machine-1bf8c4f92892e859.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

/root/repo/target/release/deps/libmanticore_machine-1bf8c4f92892e859.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

/root/repo/target/release/deps/libmanticore_machine-1bf8c4f92892e859.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/core.rs:
crates/machine/src/exec.rs:
crates/machine/src/grid.rs:
crates/machine/src/noc.rs:
crates/machine/src/parallel.rs:
