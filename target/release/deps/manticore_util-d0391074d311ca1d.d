/root/repo/target/release/deps/manticore_util-d0391074d311ca1d.d: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

/root/repo/target/release/deps/libmanticore_util-d0391074d311ca1d.rlib: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

/root/repo/target/release/deps/libmanticore_util-d0391074d311ca1d.rmeta: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
crates/util/src/spin.rs:
