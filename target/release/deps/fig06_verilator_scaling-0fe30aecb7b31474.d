/root/repo/target/release/deps/fig06_verilator_scaling-0fe30aecb7b31474.d: crates/bench/src/bin/fig06_verilator_scaling.rs

/root/repo/target/release/deps/fig06_verilator_scaling-0fe30aecb7b31474: crates/bench/src/bin/fig06_verilator_scaling.rs

crates/bench/src/bin/fig06_verilator_scaling.rs:
