/root/repo/target/release/deps/manticore_bits-562c5bc208dd4ecd.d: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

/root/repo/target/release/deps/libmanticore_bits-562c5bc208dd4ecd.rlib: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

/root/repo/target/release/deps/libmanticore_bits-562c5bc208dd4ecd.rmeta: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

crates/bits/src/lib.rs:
crates/bits/src/bits.rs:
crates/bits/src/ops.rs:
