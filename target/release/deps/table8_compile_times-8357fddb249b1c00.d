/root/repo/target/release/deps/table8_compile_times-8357fddb249b1c00.d: crates/bench/src/bin/table8_compile_times.rs

/root/repo/target/release/deps/table8_compile_times-8357fddb249b1c00: crates/bench/src/bin/table8_compile_times.rs

crates/bench/src/bin/table8_compile_times.rs:
