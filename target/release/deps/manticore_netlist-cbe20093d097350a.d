/root/repo/target/release/deps/manticore_netlist-cbe20093d097350a.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

/root/repo/target/release/deps/libmanticore_netlist-cbe20093d097350a.rlib: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

/root/repo/target/release/deps/libmanticore_netlist-cbe20093d097350a.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/eval.rs:
crates/netlist/src/ir.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/vcd.rs:
