/root/repo/target/release/deps/fig07_manticore_scaling-e6aef2d7c18571eb.d: crates/bench/src/bin/fig07_manticore_scaling.rs

/root/repo/target/release/deps/fig07_manticore_scaling-e6aef2d7c18571eb: crates/bench/src/bin/fig07_manticore_scaling.rs

crates/bench/src/bin/fig07_manticore_scaling.rs:
