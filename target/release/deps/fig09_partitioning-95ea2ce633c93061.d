/root/repo/target/release/deps/fig09_partitioning-95ea2ce633c93061.d: crates/bench/src/bin/fig09_partitioning.rs

/root/repo/target/release/deps/fig09_partitioning-95ea2ce633c93061: crates/bench/src/bin/fig09_partitioning.rs

crates/bench/src/bin/fig09_partitioning.rs:
