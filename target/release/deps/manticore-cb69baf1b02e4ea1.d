/root/repo/target/release/deps/manticore-cb69baf1b02e4ea1.d: crates/core/src/lib.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libmanticore-cb69baf1b02e4ea1.rlib: crates/core/src/lib.rs crates/core/src/sim.rs

/root/repo/target/release/deps/libmanticore-cb69baf1b02e4ea1.rmeta: crates/core/src/lib.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/sim.rs:
