/root/repo/target/release/deps/manticore_refsim-076a4783e2c9c9ef.d: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

/root/repo/target/release/deps/libmanticore_refsim-076a4783e2c9c9ef.rlib: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

/root/repo/target/release/deps/libmanticore_refsim-076a4783e2c9c9ef.rmeta: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

crates/refsim/src/lib.rs:
crates/refsim/src/models.rs:
crates/refsim/src/parallel.rs:
crates/refsim/src/serial.rs:
crates/refsim/src/spin.rs:
crates/refsim/src/tape.rs:
