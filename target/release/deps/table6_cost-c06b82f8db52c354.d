/root/repo/target/release/deps/table6_cost-c06b82f8db52c354.d: crates/bench/src/bin/table6_cost.rs

/root/repo/target/release/deps/table6_cost-c06b82f8db52c354: crates/bench/src/bin/table6_cost.rs

crates/bench/src/bin/table6_cost.rs:
