/root/repo/target/release/deps/manticore_bench-76604c7c0ba4f825.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmanticore_bench-76604c7c0ba4f825.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmanticore_bench-76604c7c0ba4f825.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
