/root/repo/target/release/deps/manticore_isa-252c1dd18e7ec89b.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

/root/repo/target/release/deps/libmanticore_isa-252c1dd18e7ec89b.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

/root/repo/target/release/deps/libmanticore_isa-252c1dd18e7ec89b.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/binary.rs:
crates/isa/src/config.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
