/root/repo/target/release/deps/manticore_workloads-8a48e71f974ee84b.d: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs

/root/repo/target/release/deps/libmanticore_workloads-8a48e71f974ee84b.rlib: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs

/root/repo/target/release/deps/libmanticore_workloads-8a48e71f974ee84b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bc.rs:
crates/workloads/src/blur.rs:
crates/workloads/src/cgra.rs:
crates/workloads/src/jpeg.rs:
crates/workloads/src/mc.rs:
crates/workloads/src/mm.rs:
crates/workloads/src/noc.rs:
crates/workloads/src/rv32r.rs:
crates/workloads/src/util.rs:
crates/workloads/src/vta.rs:
