/root/repo/target/release/deps/fig08_global_stall-65fbaf5feac01ac8.d: crates/bench/src/bin/fig08_global_stall.rs

/root/repo/target/release/deps/fig08_global_stall-65fbaf5feac01ac8: crates/bench/src/bin/fig08_global_stall.rs

crates/bench/src/bin/fig08_global_stall.rs:
