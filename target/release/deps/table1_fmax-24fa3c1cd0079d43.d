/root/repo/target/release/deps/table1_fmax-24fa3c1cd0079d43.d: crates/bench/src/bin/table1_fmax.rs

/root/repo/target/release/deps/table1_fmax-24fa3c1cd0079d43: crates/bench/src/bin/table1_fmax.rs

crates/bench/src/bin/table1_fmax.rs:
