/root/repo/target/release/deps/fig10_custom_functions-fc41edcfb31477ac.d: crates/bench/src/bin/fig10_custom_functions.rs

/root/repo/target/release/deps/fig10_custom_functions-fc41edcfb31477ac: crates/bench/src/bin/fig10_custom_functions.rs

crates/bench/src/bin/fig10_custom_functions.rs:
