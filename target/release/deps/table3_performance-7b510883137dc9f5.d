/root/repo/target/release/deps/table3_performance-7b510883137dc9f5.d: crates/bench/src/bin/table3_performance.rs

/root/repo/target/release/deps/table3_performance-7b510883137dc9f5: crates/bench/src/bin/table3_performance.rs

crates/bench/src/bin/table3_performance.rs:
