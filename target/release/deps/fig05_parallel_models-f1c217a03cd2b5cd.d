/root/repo/target/release/deps/fig05_parallel_models-f1c217a03cd2b5cd.d: crates/bench/src/bin/fig05_parallel_models.rs

/root/repo/target/release/deps/fig05_parallel_models-f1c217a03cd2b5cd: crates/bench/src/bin/fig05_parallel_models.rs

crates/bench/src/bin/fig05_parallel_models.rs:
