/root/repo/target/release/examples/design_sweep-de4f922fa8171022.d: crates/core/../../examples/design_sweep.rs

/root/repo/target/release/examples/design_sweep-de4f922fa8171022: crates/core/../../examples/design_sweep.rs

crates/core/../../examples/design_sweep.rs:
