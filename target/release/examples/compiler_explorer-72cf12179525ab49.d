/root/repo/target/release/examples/compiler_explorer-72cf12179525ab49.d: crates/core/../../examples/compiler_explorer.rs

/root/repo/target/release/examples/compiler_explorer-72cf12179525ab49: crates/core/../../examples/compiler_explorer.rs

crates/core/../../examples/compiler_explorer.rs:
