/root/repo/target/release/examples/quickstart-e13cf29b6797977e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e13cf29b6797977e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
