/root/repo/target/release/examples/waveform_debug-8592b72be5c9f98b.d: crates/core/../../examples/waveform_debug.rs

/root/repo/target/release/examples/waveform_debug-8592b72be5c9f98b: crates/core/../../examples/waveform_debug.rs

crates/core/../../examples/waveform_debug.rs:
