/root/repo/target/release/examples/mining_rig-869e14aeda645e0a.d: crates/core/../../examples/mining_rig.rs

/root/repo/target/release/examples/mining_rig-869e14aeda645e0a: crates/core/../../examples/mining_rig.rs

crates/core/../../examples/mining_rig.rs:
