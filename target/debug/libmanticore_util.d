/root/repo/target/debug/libmanticore_util.rlib: /root/repo/crates/util/src/lib.rs /root/repo/crates/util/src/rng.rs /root/repo/crates/util/src/spin.rs
