/root/repo/target/debug/libmanticore_bits.rlib: /root/repo/crates/bits/src/bits.rs /root/repo/crates/bits/src/lib.rs /root/repo/crates/bits/src/ops.rs
