/root/repo/target/debug/deps/manticore-34b00275d36e342b.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libmanticore-34b00275d36e342b.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libmanticore-34b00275d36e342b.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
