/root/repo/target/debug/deps/fig05_parallel_models-2edfcea61fac4fb9.d: crates/bench/src/bin/fig05_parallel_models.rs

/root/repo/target/debug/deps/fig05_parallel_models-2edfcea61fac4fb9: crates/bench/src/bin/fig05_parallel_models.rs

crates/bench/src/bin/fig05_parallel_models.rs:
