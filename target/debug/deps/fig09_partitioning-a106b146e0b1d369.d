/root/repo/target/debug/deps/fig09_partitioning-a106b146e0b1d369.d: crates/bench/src/bin/fig09_partitioning.rs

/root/repo/target/debug/deps/fig09_partitioning-a106b146e0b1d369: crates/bench/src/bin/fig09_partitioning.rs

crates/bench/src/bin/fig09_partitioning.rs:
