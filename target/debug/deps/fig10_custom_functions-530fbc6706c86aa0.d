/root/repo/target/debug/deps/fig10_custom_functions-530fbc6706c86aa0.d: crates/bench/src/bin/fig10_custom_functions.rs

/root/repo/target/debug/deps/fig10_custom_functions-530fbc6706c86aa0: crates/bench/src/bin/fig10_custom_functions.rs

crates/bench/src/bin/fig10_custom_functions.rs:
