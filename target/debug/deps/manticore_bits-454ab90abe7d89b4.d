/root/repo/target/debug/deps/manticore_bits-454ab90abe7d89b4.d: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

/root/repo/target/debug/deps/libmanticore_bits-454ab90abe7d89b4.rmeta: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

crates/bits/src/lib.rs:
crates/bits/src/bits.rs:
crates/bits/src/ops.rs:
