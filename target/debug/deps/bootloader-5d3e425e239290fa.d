/root/repo/target/debug/deps/bootloader-5d3e425e239290fa.d: tests/bootloader.rs

/root/repo/target/debug/deps/bootloader-5d3e425e239290fa: tests/bootloader.rs

tests/bootloader.rs:
