/root/repo/target/debug/deps/table8_compile_times-5ba7983d76633b1e.d: crates/bench/src/bin/table8_compile_times.rs

/root/repo/target/debug/deps/table8_compile_times-5ba7983d76633b1e: crates/bench/src/bin/table8_compile_times.rs

crates/bench/src/bin/table8_compile_times.rs:
