/root/repo/target/debug/deps/table6_cost-37a49f2d7d14c514.d: crates/bench/src/bin/table6_cost.rs

/root/repo/target/debug/deps/table6_cost-37a49f2d7d14c514: crates/bench/src/bin/table6_cost.rs

crates/bench/src/bin/table6_cost.rs:
