/root/repo/target/debug/deps/table3_performance-60a330c172999ccc.d: crates/bench/src/bin/table3_performance.rs

/root/repo/target/debug/deps/table3_performance-60a330c172999ccc: crates/bench/src/bin/table3_performance.rs

crates/bench/src/bin/table3_performance.rs:
