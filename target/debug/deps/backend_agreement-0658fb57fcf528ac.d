/root/repo/target/debug/deps/backend_agreement-0658fb57fcf528ac.d: crates/core/../../tests/backend_agreement.rs

/root/repo/target/debug/deps/backend_agreement-0658fb57fcf528ac: crates/core/../../tests/backend_agreement.rs

crates/core/../../tests/backend_agreement.rs:
