/root/repo/target/debug/deps/workload_equivalence-3e593a620b8e8727.d: tests/workload_equivalence.rs

/root/repo/target/debug/deps/workload_equivalence-3e593a620b8e8727: tests/workload_equivalence.rs

tests/workload_equivalence.rs:
