/root/repo/target/debug/deps/manticore_bits-bfe549412baca008.d: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

/root/repo/target/debug/deps/libmanticore_bits-bfe549412baca008.rlib: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

/root/repo/target/debug/deps/libmanticore_bits-bfe549412baca008.rmeta: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs

crates/bits/src/lib.rs:
crates/bits/src/bits.rs:
crates/bits/src/ops.rs:
