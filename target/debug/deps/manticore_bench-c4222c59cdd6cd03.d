/root/repo/target/debug/deps/manticore_bench-c4222c59cdd6cd03.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/manticore_bench-c4222c59cdd6cd03: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
