/root/repo/target/debug/deps/manticore_util-5d482508407452ab.d: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

/root/repo/target/debug/deps/manticore_util-5d482508407452ab: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
crates/util/src/spin.rs:
