/root/repo/target/debug/deps/manticore_isa-1176737fbdf5e0d1.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

/root/repo/target/debug/deps/libmanticore_isa-1176737fbdf5e0d1.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/binary.rs:
crates/isa/src/config.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
