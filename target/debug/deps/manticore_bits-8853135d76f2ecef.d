/root/repo/target/debug/deps/manticore_bits-8853135d76f2ecef.d: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs crates/bits/src/tests.rs

/root/repo/target/debug/deps/manticore_bits-8853135d76f2ecef: crates/bits/src/lib.rs crates/bits/src/bits.rs crates/bits/src/ops.rs crates/bits/src/tests.rs

crates/bits/src/lib.rs:
crates/bits/src/bits.rs:
crates/bits/src/ops.rs:
crates/bits/src/tests.rs:
