/root/repo/target/debug/deps/table1_fmax-31a69719805cec51.d: crates/bench/src/bin/table1_fmax.rs

/root/repo/target/debug/deps/table1_fmax-31a69719805cec51: crates/bench/src/bin/table1_fmax.rs

crates/bench/src/bin/table1_fmax.rs:
