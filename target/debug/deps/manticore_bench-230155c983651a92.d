/root/repo/target/debug/deps/manticore_bench-230155c983651a92.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmanticore_bench-230155c983651a92.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmanticore_bench-230155c983651a92.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
