/root/repo/target/debug/deps/parallel_grid_equivalence-f2e272d2cca91530.d: crates/core/../../tests/parallel_grid_equivalence.rs

/root/repo/target/debug/deps/parallel_grid_equivalence-f2e272d2cca91530: crates/core/../../tests/parallel_grid_equivalence.rs

crates/core/../../tests/parallel_grid_equivalence.rs:
