/root/repo/target/debug/deps/table6_cost-69df1c60796546cb.d: crates/bench/src/bin/table6_cost.rs

/root/repo/target/debug/deps/table6_cost-69df1c60796546cb: crates/bench/src/bin/table6_cost.rs

crates/bench/src/bin/table6_cost.rs:
