/root/repo/target/debug/deps/workload_equivalence-87e9f0a7bff3c765.d: crates/core/../../tests/workload_equivalence.rs

/root/repo/target/debug/deps/workload_equivalence-87e9f0a7bff3c765: crates/core/../../tests/workload_equivalence.rs

crates/core/../../tests/workload_equivalence.rs:
