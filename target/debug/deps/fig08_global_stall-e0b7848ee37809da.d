/root/repo/target/debug/deps/fig08_global_stall-e0b7848ee37809da.d: crates/bench/src/bin/fig08_global_stall.rs

/root/repo/target/debug/deps/fig08_global_stall-e0b7848ee37809da: crates/bench/src/bin/fig08_global_stall.rs

crates/bench/src/bin/fig08_global_stall.rs:
