/root/repo/target/debug/deps/paper_benches-368164c172e095c6.d: crates/bench/benches/paper_benches.rs

/root/repo/target/debug/deps/paper_benches-368164c172e095c6: crates/bench/benches/paper_benches.rs

crates/bench/benches/paper_benches.rs:
