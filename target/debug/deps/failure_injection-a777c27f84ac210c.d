/root/repo/target/debug/deps/failure_injection-a777c27f84ac210c.d: crates/core/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-a777c27f84ac210c: crates/core/../../tests/failure_injection.rs

crates/core/../../tests/failure_injection.rs:
