/root/repo/target/debug/deps/manticore_machine-5d65417fbc66e5e7.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libmanticore_machine-5d65417fbc66e5e7.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/core.rs:
crates/machine/src/exec.rs:
crates/machine/src/grid.rs:
crates/machine/src/noc.rs:
crates/machine/src/parallel.rs:
