/root/repo/target/debug/deps/manticore_util-07b27b8c255d9cdd.d: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

/root/repo/target/debug/deps/libmanticore_util-07b27b8c255d9cdd.rlib: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

/root/repo/target/debug/deps/libmanticore_util-07b27b8c255d9cdd.rmeta: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
crates/util/src/spin.rs:
