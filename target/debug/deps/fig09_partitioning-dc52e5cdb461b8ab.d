/root/repo/target/debug/deps/fig09_partitioning-dc52e5cdb461b8ab.d: crates/bench/src/bin/fig09_partitioning.rs

/root/repo/target/debug/deps/fig09_partitioning-dc52e5cdb461b8ab: crates/bench/src/bin/fig09_partitioning.rs

crates/bench/src/bin/fig09_partitioning.rs:
