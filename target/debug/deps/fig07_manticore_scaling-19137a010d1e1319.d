/root/repo/target/debug/deps/fig07_manticore_scaling-19137a010d1e1319.d: crates/bench/src/bin/fig07_manticore_scaling.rs

/root/repo/target/debug/deps/fig07_manticore_scaling-19137a010d1e1319: crates/bench/src/bin/fig07_manticore_scaling.rs

crates/bench/src/bin/fig07_manticore_scaling.rs:
