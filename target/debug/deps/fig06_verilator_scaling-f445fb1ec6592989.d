/root/repo/target/debug/deps/fig06_verilator_scaling-f445fb1ec6592989.d: crates/bench/src/bin/fig06_verilator_scaling.rs

/root/repo/target/debug/deps/fig06_verilator_scaling-f445fb1ec6592989: crates/bench/src/bin/fig06_verilator_scaling.rs

crates/bench/src/bin/fig06_verilator_scaling.rs:
