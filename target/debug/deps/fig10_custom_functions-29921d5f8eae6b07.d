/root/repo/target/debug/deps/fig10_custom_functions-29921d5f8eae6b07.d: crates/bench/src/bin/fig10_custom_functions.rs

/root/repo/target/debug/deps/fig10_custom_functions-29921d5f8eae6b07: crates/bench/src/bin/fig10_custom_functions.rs

crates/bench/src/bin/fig10_custom_functions.rs:
