/root/repo/target/debug/deps/bootloader-1b7e4f3bcb655e1e.d: crates/core/../../tests/bootloader.rs

/root/repo/target/debug/deps/bootloader-1b7e4f3bcb655e1e: crates/core/../../tests/bootloader.rs

crates/core/../../tests/bootloader.rs:
