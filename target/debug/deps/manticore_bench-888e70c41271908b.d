/root/repo/target/debug/deps/manticore_bench-888e70c41271908b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmanticore_bench-888e70c41271908b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
