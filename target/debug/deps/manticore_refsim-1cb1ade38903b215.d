/root/repo/target/debug/deps/manticore_refsim-1cb1ade38903b215.d: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs crates/refsim/src/tests.rs

/root/repo/target/debug/deps/manticore_refsim-1cb1ade38903b215: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs crates/refsim/src/tests.rs

crates/refsim/src/lib.rs:
crates/refsim/src/models.rs:
crates/refsim/src/parallel.rs:
crates/refsim/src/serial.rs:
crates/refsim/src/spin.rs:
crates/refsim/src/tape.rs:
crates/refsim/src/tests.rs:
