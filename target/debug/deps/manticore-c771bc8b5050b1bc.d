/root/repo/target/debug/deps/manticore-c771bc8b5050b1bc.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/manticore-c771bc8b5050b1bc: crates/core/src/lib.rs

crates/core/src/lib.rs:
