/root/repo/target/debug/deps/fig05_parallel_models-5af95825aff204d2.d: crates/bench/src/bin/fig05_parallel_models.rs

/root/repo/target/debug/deps/fig05_parallel_models-5af95825aff204d2: crates/bench/src/bin/fig05_parallel_models.rs

crates/bench/src/bin/fig05_parallel_models.rs:
