/root/repo/target/debug/deps/failure_injection-2f06129ab00c6ff9.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-2f06129ab00c6ff9: tests/failure_injection.rs

tests/failure_injection.rs:
