/root/repo/target/debug/deps/manticore-236b1722e4ac4eb6.d: crates/core/src/lib.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmanticore-236b1722e4ac4eb6.rmeta: crates/core/src/lib.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/sim.rs:
