/root/repo/target/debug/deps/manticore_netlist-fc7d719976d636f7.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs crates/netlist/src/tests.rs

/root/repo/target/debug/deps/manticore_netlist-fc7d719976d636f7: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs crates/netlist/src/tests.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/eval.rs:
crates/netlist/src/ir.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/vcd.rs:
crates/netlist/src/tests.rs:
