/root/repo/target/debug/deps/manticore_netlist-b08a1844489249f2.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

/root/repo/target/debug/deps/libmanticore_netlist-b08a1844489249f2.rlib: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

/root/repo/target/debug/deps/libmanticore_netlist-b08a1844489249f2.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/eval.rs:
crates/netlist/src/ir.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/vcd.rs:
