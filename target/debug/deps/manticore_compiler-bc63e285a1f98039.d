/root/repo/target/debug/deps/manticore_compiler-bc63e285a1f98039.d: crates/compiler/src/lib.rs crates/compiler/src/bitset.rs crates/compiler/src/cfu.rs crates/compiler/src/error.rs crates/compiler/src/interp.rs crates/compiler/src/lir.rs crates/compiler/src/lir_opt.rs crates/compiler/src/lower.rs crates/compiler/src/opt.rs crates/compiler/src/partition.rs crates/compiler/src/regalloc.rs crates/compiler/src/report.rs crates/compiler/src/schedule.rs

/root/repo/target/debug/deps/libmanticore_compiler-bc63e285a1f98039.rlib: crates/compiler/src/lib.rs crates/compiler/src/bitset.rs crates/compiler/src/cfu.rs crates/compiler/src/error.rs crates/compiler/src/interp.rs crates/compiler/src/lir.rs crates/compiler/src/lir_opt.rs crates/compiler/src/lower.rs crates/compiler/src/opt.rs crates/compiler/src/partition.rs crates/compiler/src/regalloc.rs crates/compiler/src/report.rs crates/compiler/src/schedule.rs

/root/repo/target/debug/deps/libmanticore_compiler-bc63e285a1f98039.rmeta: crates/compiler/src/lib.rs crates/compiler/src/bitset.rs crates/compiler/src/cfu.rs crates/compiler/src/error.rs crates/compiler/src/interp.rs crates/compiler/src/lir.rs crates/compiler/src/lir_opt.rs crates/compiler/src/lower.rs crates/compiler/src/opt.rs crates/compiler/src/partition.rs crates/compiler/src/regalloc.rs crates/compiler/src/report.rs crates/compiler/src/schedule.rs

crates/compiler/src/lib.rs:
crates/compiler/src/bitset.rs:
crates/compiler/src/cfu.rs:
crates/compiler/src/error.rs:
crates/compiler/src/interp.rs:
crates/compiler/src/lir.rs:
crates/compiler/src/lir_opt.rs:
crates/compiler/src/lower.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/partition.rs:
crates/compiler/src/regalloc.rs:
crates/compiler/src/report.rs:
crates/compiler/src/schedule.rs:
