/root/repo/target/debug/deps/backend_agreement-96c3aaf213257604.d: tests/backend_agreement.rs

/root/repo/target/debug/deps/backend_agreement-96c3aaf213257604: tests/backend_agreement.rs

tests/backend_agreement.rs:
