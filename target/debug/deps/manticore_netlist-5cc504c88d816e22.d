/root/repo/target/debug/deps/manticore_netlist-5cc504c88d816e22.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

/root/repo/target/debug/deps/libmanticore_netlist-5cc504c88d816e22.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/eval.rs crates/netlist/src/ir.rs crates/netlist/src/stats.rs crates/netlist/src/topo.rs crates/netlist/src/vcd.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/eval.rs:
crates/netlist/src/ir.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/topo.rs:
crates/netlist/src/vcd.rs:
