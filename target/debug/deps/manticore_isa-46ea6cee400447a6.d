/root/repo/target/debug/deps/manticore_isa-46ea6cee400447a6.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/tests.rs

/root/repo/target/debug/deps/manticore_isa-46ea6cee400447a6: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/tests.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/binary.rs:
crates/isa/src/config.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
crates/isa/src/tests.rs:
