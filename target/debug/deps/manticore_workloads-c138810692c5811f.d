/root/repo/target/debug/deps/manticore_workloads-c138810692c5811f.d: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs crates/workloads/src/tests.rs

/root/repo/target/debug/deps/manticore_workloads-c138810692c5811f: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs crates/workloads/src/tests.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bc.rs:
crates/workloads/src/blur.rs:
crates/workloads/src/cgra.rs:
crates/workloads/src/jpeg.rs:
crates/workloads/src/mc.rs:
crates/workloads/src/mm.rs:
crates/workloads/src/noc.rs:
crates/workloads/src/rv32r.rs:
crates/workloads/src/util.rs:
crates/workloads/src/vta.rs:
crates/workloads/src/tests.rs:
