/root/repo/target/debug/deps/fig07_manticore_scaling-6306dc9e6e53907c.d: crates/bench/src/bin/fig07_manticore_scaling.rs

/root/repo/target/debug/deps/fig07_manticore_scaling-6306dc9e6e53907c: crates/bench/src/bin/fig07_manticore_scaling.rs

crates/bench/src/bin/fig07_manticore_scaling.rs:
