/root/repo/target/debug/deps/manticore-08b081e926fe08aa.d: crates/core/src/lib.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/manticore-08b081e926fe08aa: crates/core/src/lib.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/sim.rs:
