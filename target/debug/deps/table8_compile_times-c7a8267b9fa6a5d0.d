/root/repo/target/debug/deps/table8_compile_times-c7a8267b9fa6a5d0.d: crates/bench/src/bin/table8_compile_times.rs

/root/repo/target/debug/deps/table8_compile_times-c7a8267b9fa6a5d0: crates/bench/src/bin/table8_compile_times.rs

crates/bench/src/bin/table8_compile_times.rs:
