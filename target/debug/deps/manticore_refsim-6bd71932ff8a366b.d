/root/repo/target/debug/deps/manticore_refsim-6bd71932ff8a366b.d: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

/root/repo/target/debug/deps/libmanticore_refsim-6bd71932ff8a366b.rlib: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

/root/repo/target/debug/deps/libmanticore_refsim-6bd71932ff8a366b.rmeta: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

crates/refsim/src/lib.rs:
crates/refsim/src/models.rs:
crates/refsim/src/parallel.rs:
crates/refsim/src/serial.rs:
crates/refsim/src/spin.rs:
crates/refsim/src/tape.rs:
