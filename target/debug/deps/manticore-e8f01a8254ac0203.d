/root/repo/target/debug/deps/manticore-e8f01a8254ac0203.d: crates/core/src/lib.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmanticore-e8f01a8254ac0203.rlib: crates/core/src/lib.rs crates/core/src/sim.rs

/root/repo/target/debug/deps/libmanticore-e8f01a8254ac0203.rmeta: crates/core/src/lib.rs crates/core/src/sim.rs

crates/core/src/lib.rs:
crates/core/src/sim.rs:
