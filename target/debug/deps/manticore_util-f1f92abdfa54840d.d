/root/repo/target/debug/deps/manticore_util-f1f92abdfa54840d.d: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

/root/repo/target/debug/deps/libmanticore_util-f1f92abdfa54840d.rmeta: crates/util/src/lib.rs crates/util/src/rng.rs crates/util/src/spin.rs

crates/util/src/lib.rs:
crates/util/src/rng.rs:
crates/util/src/spin.rs:
