/root/repo/target/debug/deps/fig06_verilator_scaling-6831b1d4fd744529.d: crates/bench/src/bin/fig06_verilator_scaling.rs

/root/repo/target/debug/deps/fig06_verilator_scaling-6831b1d4fd744529: crates/bench/src/bin/fig06_verilator_scaling.rs

crates/bench/src/bin/fig06_verilator_scaling.rs:
