/root/repo/target/debug/deps/table3_performance-92203520eb5b3fe1.d: crates/bench/src/bin/table3_performance.rs

/root/repo/target/debug/deps/table3_performance-92203520eb5b3fe1: crates/bench/src/bin/table3_performance.rs

crates/bench/src/bin/table3_performance.rs:
