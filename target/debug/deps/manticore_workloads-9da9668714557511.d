/root/repo/target/debug/deps/manticore_workloads-9da9668714557511.d: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs

/root/repo/target/debug/deps/libmanticore_workloads-9da9668714557511.rlib: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs

/root/repo/target/debug/deps/libmanticore_workloads-9da9668714557511.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bc.rs crates/workloads/src/blur.rs crates/workloads/src/cgra.rs crates/workloads/src/jpeg.rs crates/workloads/src/mc.rs crates/workloads/src/mm.rs crates/workloads/src/noc.rs crates/workloads/src/rv32r.rs crates/workloads/src/util.rs crates/workloads/src/vta.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bc.rs:
crates/workloads/src/blur.rs:
crates/workloads/src/cgra.rs:
crates/workloads/src/jpeg.rs:
crates/workloads/src/mc.rs:
crates/workloads/src/mm.rs:
crates/workloads/src/noc.rs:
crates/workloads/src/rv32r.rs:
crates/workloads/src/util.rs:
crates/workloads/src/vta.rs:
