/root/repo/target/debug/deps/manticore_machine-6d55b7ec878881ca.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs crates/machine/src/tests.rs

/root/repo/target/debug/deps/manticore_machine-6d55b7ec878881ca: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs crates/machine/src/tests.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/core.rs:
crates/machine/src/exec.rs:
crates/machine/src/grid.rs:
crates/machine/src/noc.rs:
crates/machine/src/parallel.rs:
crates/machine/src/tests.rs:
