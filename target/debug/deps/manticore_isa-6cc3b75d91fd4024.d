/root/repo/target/debug/deps/manticore_isa-6cc3b75d91fd4024.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

/root/repo/target/debug/deps/libmanticore_isa-6cc3b75d91fd4024.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

/root/repo/target/debug/deps/libmanticore_isa-6cc3b75d91fd4024.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/binary.rs crates/isa/src/config.rs crates/isa/src/exception.rs crates/isa/src/instr.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/binary.rs:
crates/isa/src/config.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
