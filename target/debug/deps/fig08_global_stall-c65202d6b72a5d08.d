/root/repo/target/debug/deps/fig08_global_stall-c65202d6b72a5d08.d: crates/bench/src/bin/fig08_global_stall.rs

/root/repo/target/debug/deps/fig08_global_stall-c65202d6b72a5d08: crates/bench/src/bin/fig08_global_stall.rs

crates/bench/src/bin/fig08_global_stall.rs:
