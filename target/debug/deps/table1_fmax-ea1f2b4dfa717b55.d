/root/repo/target/debug/deps/table1_fmax-ea1f2b4dfa717b55.d: crates/bench/src/bin/table1_fmax.rs

/root/repo/target/debug/deps/table1_fmax-ea1f2b4dfa717b55: crates/bench/src/bin/table1_fmax.rs

crates/bench/src/bin/table1_fmax.rs:
