/root/repo/target/debug/deps/manticore_machine-098bc7029692e285.d: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libmanticore_machine-098bc7029692e285.rlib: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

/root/repo/target/debug/deps/libmanticore_machine-098bc7029692e285.rmeta: crates/machine/src/lib.rs crates/machine/src/cache.rs crates/machine/src/core.rs crates/machine/src/exec.rs crates/machine/src/grid.rs crates/machine/src/noc.rs crates/machine/src/parallel.rs

crates/machine/src/lib.rs:
crates/machine/src/cache.rs:
crates/machine/src/core.rs:
crates/machine/src/exec.rs:
crates/machine/src/grid.rs:
crates/machine/src/noc.rs:
crates/machine/src/parallel.rs:
