/root/repo/target/debug/deps/manticore_refsim-c25357fd038ef2bf.d: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

/root/repo/target/debug/deps/libmanticore_refsim-c25357fd038ef2bf.rmeta: crates/refsim/src/lib.rs crates/refsim/src/models.rs crates/refsim/src/parallel.rs crates/refsim/src/serial.rs crates/refsim/src/spin.rs crates/refsim/src/tape.rs

crates/refsim/src/lib.rs:
crates/refsim/src/models.rs:
crates/refsim/src/parallel.rs:
crates/refsim/src/serial.rs:
crates/refsim/src/spin.rs:
crates/refsim/src/tape.rs:
