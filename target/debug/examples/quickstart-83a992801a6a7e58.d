/root/repo/target/debug/examples/quickstart-83a992801a6a7e58.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-83a992801a6a7e58: examples/quickstart.rs

examples/quickstart.rs:
