/root/repo/target/debug/examples/mining_rig-c948c1365b60da92.d: examples/mining_rig.rs

/root/repo/target/debug/examples/mining_rig-c948c1365b60da92: examples/mining_rig.rs

examples/mining_rig.rs:
