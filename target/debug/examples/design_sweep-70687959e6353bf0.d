/root/repo/target/debug/examples/design_sweep-70687959e6353bf0.d: crates/core/../../examples/design_sweep.rs

/root/repo/target/debug/examples/design_sweep-70687959e6353bf0: crates/core/../../examples/design_sweep.rs

crates/core/../../examples/design_sweep.rs:
