/root/repo/target/debug/examples/quickstart-93614b9e93ef1b93.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-93614b9e93ef1b93: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
