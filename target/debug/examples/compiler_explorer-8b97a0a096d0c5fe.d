/root/repo/target/debug/examples/compiler_explorer-8b97a0a096d0c5fe.d: examples/compiler_explorer.rs

/root/repo/target/debug/examples/compiler_explorer-8b97a0a096d0c5fe: examples/compiler_explorer.rs

examples/compiler_explorer.rs:
