/root/repo/target/debug/examples/design_sweep-0fe11d2ba608ac46.d: examples/design_sweep.rs

/root/repo/target/debug/examples/design_sweep-0fe11d2ba608ac46: examples/design_sweep.rs

examples/design_sweep.rs:
