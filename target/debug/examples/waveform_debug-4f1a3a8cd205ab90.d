/root/repo/target/debug/examples/waveform_debug-4f1a3a8cd205ab90.d: examples/waveform_debug.rs

/root/repo/target/debug/examples/waveform_debug-4f1a3a8cd205ab90: examples/waveform_debug.rs

examples/waveform_debug.rs:
