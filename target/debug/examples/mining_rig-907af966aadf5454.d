/root/repo/target/debug/examples/mining_rig-907af966aadf5454.d: crates/core/../../examples/mining_rig.rs

/root/repo/target/debug/examples/mining_rig-907af966aadf5454: crates/core/../../examples/mining_rig.rs

crates/core/../../examples/mining_rig.rs:
