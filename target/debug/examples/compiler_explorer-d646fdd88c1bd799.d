/root/repo/target/debug/examples/compiler_explorer-d646fdd88c1bd799.d: crates/core/../../examples/compiler_explorer.rs

/root/repo/target/debug/examples/compiler_explorer-d646fdd88c1bd799: crates/core/../../examples/compiler_explorer.rs

crates/core/../../examples/compiler_explorer.rs:
