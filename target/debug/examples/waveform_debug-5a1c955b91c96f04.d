/root/repo/target/debug/examples/waveform_debug-5a1c955b91c96f04.d: crates/core/../../examples/waveform_debug.rs

/root/repo/target/debug/examples/waveform_debug-5a1c955b91c96f04: crates/core/../../examples/waveform_debug.rs

crates/core/../../examples/waveform_debug.rs:
