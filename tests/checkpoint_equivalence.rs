//! Scenario-tree state movement must be architecturally invisible: a run
//! that is snapshotted mid-flight and continued from the restored
//! snapshot — on a fresh machine, or through a gang-lane round-trip
//! (`fork(1)` then `into_machines()`) — is bit-identical to the run that
//! was never interrupted, across every engine variant (interp / tape /
//! uops × strict / permissive) and all nine workloads.
//!
//! The harness is property-style: the snapshot Vcycle is drawn from a
//! local PRNG per (workload, variant), and the comparison is a full state
//! fingerprint — counters, every register of every core through the
//! flushed host view, an FNV hash of every scratchpad word, plus
//! displays / finish flags / errors from the resumed segment.
//!
//! This is the differential contract of the *Guaranteed Guess* pattern:
//! no state-movement path (checkpoint, restore, fork) is trusted until it
//! is pinned against a from-scratch run.

use std::sync::Arc;

use manticore::compiler::{compile, CompileOptions, CompileOutput};
use manticore::isa::{CoreId, MachineConfig, Reg};
use manticore::machine::{
    Checkpoint, CompiledProgram, GangMachine, Machine, MachineError, ReplayEngine, MAX_LANES,
};
use manticore::util::SmallRng;
use manticore::workloads;

const GRID: usize = 6;
/// Total Vcycle budget each scenario runs to (split at a random point).
const VCYCLES: u64 = 24;

/// Full-state fingerprint: counters, every register of every core through
/// the flushed host view, and an FNV-1a hash of every scratchpad word.
fn fingerprint(machine: &Machine, regfile_size: usize, grid: usize) -> Vec<u64> {
    let mut fp = Vec::new();
    let c = machine.counters();
    fp.extend_from_slice(&[
        c.compute_cycles,
        c.stall_cycles,
        c.vcycles,
        c.instructions,
        c.sends,
        c.messages_delivered,
        c.exceptions,
    ]);
    let mut scratch_hash: u64 = 0xcbf29ce484222325;
    for y in 0..grid {
        for x in 0..grid {
            let core = CoreId::new(x as u8, y as u8);
            for r in 0..regfile_size {
                fp.push(machine.read_reg(core, Reg(r as u16)) as u64);
            }
            for &w in machine.core_scratch(core) {
                scratch_hash = (scratch_hash ^ w as u64).wrapping_mul(0x100000001b3);
            }
        }
    }
    fp.push(scratch_hash);
    fp
}

/// The full engine matrix the issue pins: interpreter, tape replay, and
/// fused micro-ops, each under strict and permissive hazards.
fn variants() -> Vec<(&'static str, bool, Option<ReplayEngine>, bool)> {
    vec![
        ("interp+strict", false, None, true),
        ("interp+permissive", false, None, false),
        ("tape+strict", true, Some(ReplayEngine::Tape), true),
        ("tape+permissive", true, Some(ReplayEngine::Tape), false),
        ("uops+strict", true, Some(ReplayEngine::MicroOps), true),
        ("uops+permissive", true, Some(ReplayEngine::MicroOps), false),
    ]
}

/// Boots a machine with a variant's knobs, in the same order the fleet's
/// `SimJob::execute` applies them.
fn boot(
    program: &Arc<CompiledProgram>,
    replay: bool,
    engine: Option<ReplayEngine>,
    strict: bool,
) -> Machine {
    let mut m = Machine::from_program(Arc::clone(program));
    m.set_strict_hazards(strict);
    m.set_replay(replay);
    if let Some(engine) = engine {
        m.set_replay_engine(engine);
    }
    m
}

fn compile_workload(name: &str) -> (CompileOutput, Arc<CompiledProgram>) {
    let w = workloads::by_name(name).unwrap();
    let config = MachineConfig::with_grid(GRID, GRID);
    let options = CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    let program = CompiledProgram::compile_shared(config, &out.binary)
        .unwrap_or_else(|e| panic!("{name}: load: {e}"));
    (out, program)
}

#[test]
fn restored_and_forked_runs_are_bit_identical_to_uninterrupted_runs() {
    let rf = MachineConfig::with_grid(GRID, GRID).regfile_size;
    for w in workloads::all() {
        let (_, program) = compile_workload(w.name);
        for (vname, replay, engine, strict) in variants() {
            let what = format!("{} {vname}", w.name);
            // Property-style split point: random per (workload, variant),
            // strictly inside the run so the snapshot is genuinely
            // mid-flight (after at least the validation Vcycle).
            let mut rng = SmallRng::seed_from_u64(
                w.name.bytes().fold(0xc0ffee_u64, |h, b| h * 131 + b as u64) ^ vname.len() as u64,
            );
            let split = 1 + rng.gen_range(0..(VCYCLES as usize - 1)) as u64;

            // The uninterrupted reference: run to the split, snapshot,
            // keep going on the same machine.
            let mut original = boot(&program, replay, engine, strict);
            original
                .run_vcycles(split)
                .unwrap_or_else(|e| panic!("{what}: first segment: {e}"));
            let cp = original.checkpoint();
            assert_eq!(cp.vcycles(), split, "{what}: checkpoint vcycle");
            assert_eq!(cp.identity(), program.identity(), "{what}: identity");
            let tail = original.run_vcycles(VCYCLES - split);
            let original_fp = fingerprint(&original, rf, GRID);

            // Path 1: restore onto a fresh machine (deliberately booted
            // with *different* knobs — restore must carry the snapshot's).
            let mut restored = Machine::from_program(Arc::clone(&program));
            restored.restore(&cp).unwrap();
            let restored_tail = restored.run_vcycles(VCYCLES - split);
            match (&tail, &restored_tail) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.displays, b.displays, "{what}: restored displays");
                    assert_eq!(a.finished, b.finished, "{what}: restored finish");
                    assert_eq!(a.vcycles_run, b.vcycles_run, "{what}: restored vcycles");
                }
                (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}"), "{what}"),
                (a, b) => panic!("{what}: outcome kind diverged: {a:?} vs {b:?}"),
            }
            assert_eq!(
                fingerprint(&restored, rf, GRID),
                original_fp,
                "{what}: restored run diverged from the uninterrupted run"
            );

            // Path 2: gang-lane round-trip — fork(1), resume as a gang,
            // transpose back out.
            let mut gang = cp.fork(1).unwrap();
            let gang_tail = gang.run_vcycles(VCYCLES - split).remove(0);
            let lane = gang.into_machines().remove(0);
            match (&tail, &gang_tail) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.displays, b.displays, "{what}: forked displays");
                    assert_eq!(a.finished, b.finished, "{what}: forked finish");
                    assert_eq!(a.vcycles_run, b.vcycles_run, "{what}: forked vcycles");
                }
                (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}"), "{what}"),
                (a, b) => panic!("{what}: gang outcome kind diverged: {a:?} vs {b:?}"),
            }
            assert_eq!(
                fingerprint(&lane, rf, GRID),
                original_fp,
                "{what}: gang-lane round-trip diverged from the uninterrupted run"
            );
        }
    }
}

/// Resolves the first machine word of RTL register `name` (enough to
/// plant distinct 16-bit stimulus per scenario).
fn first_word_of(out: &CompileOutput, name: &str) -> (CoreId, Reg) {
    let ri = out
        .optimized
        .registers()
        .iter()
        .position(|r| r.name == name)
        .unwrap_or_else(|| panic!("register `{name}` not in the optimized design"));
    out.metadata.reg_locations[ri].words[0]
}

#[test]
fn forked_children_match_solo_runs_given_the_same_mid_run_pokes() {
    // The gang-vs-solo contract of `gang_equivalence.rs`, extended to
    // mid-flight entry: fork K children with distinct pokes at the fork
    // point; each must be bit-identical to a solo machine restored from
    // the same checkpoint that received the same pokes before resuming.
    let (out, program) = compile_workload("bc");
    let rf = program.config().regfile_size;
    let (nonce_core, nonce_reg) = first_word_of(&out, "nonce0");
    let lanes = 4usize;
    let split = 7u64;

    for (vname, replay, engine, strict) in variants() {
        let what = format!("bc fork {vname}");
        let mut root = boot(&program, replay, engine, strict);
        root.run_vcycles(split)
            .unwrap_or_else(|e| panic!("{what}: warmup: {e}"));
        let cp = root.checkpoint();

        let mut gang = cp.fork(lanes).unwrap();
        for lane in 0..lanes {
            gang.poke_reg(lane, nonce_core, nonce_reg, 0x1000 + lane as u16);
        }
        let results = gang.run_vcycles(VCYCLES - split);
        let machines = gang.into_machines();

        for lane in 0..lanes {
            let mut solo = Machine::from_program(Arc::clone(&program));
            solo.restore(&cp).unwrap();
            solo.poke_reg(nonce_core, nonce_reg, 0x1000 + lane as u16);
            let solo_result = solo.run_vcycles(VCYCLES - split);
            match (&results[lane], &solo_result) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.displays, b.displays, "{what} lane {lane}: displays");
                    assert_eq!(a.finished, b.finished, "{what} lane {lane}: finish");
                    assert_eq!(a.vcycles_run, b.vcycles_run, "{what} lane {lane}: vcycles");
                }
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a}"), format!("{b}"), "{what} lane {lane}")
                }
                (a, b) => panic!("{what} lane {lane}: outcome kind: {a:?} vs {b:?}"),
            }
            assert_eq!(
                fingerprint(&machines[lane], rf, GRID),
                fingerprint(&solo, rf, GRID),
                "{what} lane {lane}: forked child diverged from the solo resumed run"
            );
        }
    }
}

#[test]
fn restore_onto_a_different_program_is_a_typed_error_with_no_mutation() {
    // Two compilations of the *same* netlist are still distinct programs
    // (their tapes could legitimately differ); a snapshot from one must
    // not apply to a machine of the other — and must leave it untouched.
    let (_, program_a) = compile_workload("mm");
    let (_, program_b) = compile_workload("mm");
    assert_ne!(program_a.identity(), program_b.identity());
    let rf = program_a.config().regfile_size;

    let mut machine_a = Machine::from_program(Arc::clone(&program_a));
    machine_a.run_vcycles(5).unwrap();
    let cp = machine_a.checkpoint();

    let mut machine_b = Machine::from_program(Arc::clone(&program_b));
    machine_b.run_vcycles(3).unwrap();
    let before = fingerprint(&machine_b, rf, GRID);
    match machine_b.restore(&cp) {
        Err(MachineError::CheckpointMismatch { expected, got }) => {
            assert_eq!(expected, program_a.identity());
            assert_eq!(got, program_b.identity());
        }
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }
    assert_eq!(
        fingerprint(&machine_b, rf, GRID),
        before,
        "a refused restore must not mutate any state"
    );
    // The same key guards the fork path.
    machine_b.run_vcycles(2).unwrap();
    assert_eq!(machine_b.counters().vcycles, 5, "machine still runs fine");
}

/// A self-checking design whose assertion arms on a poked register (same
/// shape as `gang_equivalence.rs`): the counter runs freely unless it
/// reaches `trip`.
fn tripwire() -> (CompileOutput, Arc<CompiledProgram>) {
    let mut b = manticore::netlist::NetlistBuilder::new("tripwire");
    let count = b.reg("count", 16, 0);
    let one = b.lit(1, 16);
    let next = b.add(count.q(), one);
    b.set_next(count, next);
    let trip = b.reg("trip", 16, 0x7fff);
    b.set_next(trip, trip.q());
    let hit = b.eq(count.q(), trip.q());
    let ok = b.not(hit);
    b.expect_true(ok, "tripwire hit");
    b.output("count", count.q());
    let netlist = b.finish_build().unwrap();
    let config = MachineConfig::with_grid(2, 2);
    let options = CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = compile(&netlist, &options).unwrap();
    let program = CompiledProgram::compile_shared(config, &out.binary).unwrap();
    (out, program)
}

#[test]
fn snapshot_of_a_faulted_lane_restores_as_parked_with_the_identical_error() {
    let (out, program) = tripwire();
    let rf = program.config().regfile_size;
    let (trip_core, trip_reg) = first_word_of(&out, "trip");

    // Solo reference: the exact error and abort-point state.
    let mut solo = Machine::from_program(Arc::clone(&program));
    solo.poke_reg(trip_core, trip_reg, 6);
    let solo_err = solo.run_vcycles(VCYCLES).unwrap_err();
    let solo_fp = fingerprint(&solo, rf, 2);

    // A gang where lane 1 trips mid-run.
    let mut gang = GangMachine::from_program(Arc::clone(&program), 2);
    gang.poke_reg(1, trip_core, trip_reg, 6);
    let results = gang.run_vcycles(VCYCLES);
    assert!(results[0].is_ok(), "lane 0 survives");
    assert!(results[1].is_err(), "lane 1 trips");

    // The parked lane's snapshot carries the fault...
    let cp = gang.checkpoint_lane(1);
    assert_eq!(
        format!(
            "{}",
            cp.fault().expect("parked lane snapshots carry their fault")
        ),
        format!("{solo_err}"),
        "snapshot fault"
    );
    // ...its state is the abort point...
    assert_eq!(fingerprint(&cp.boot(), rf, 2), solo_fp, "snapshot state");

    // ...and forking it reproduces lanes parked with the identical error:
    // no further execution, state still frozen.
    let mut forked = cp.fork(2).unwrap();
    for (lane, result) in forked.run_vcycles(10).iter().enumerate() {
        match result {
            Err(e) => assert_eq!(format!("{e}"), format!("{solo_err}"), "lane {lane}"),
            Ok(o) => panic!("forked lane {lane} of a faulted snapshot ran {o:?}"),
        }
    }
    for (lane, machine) in forked.into_machines().into_iter().enumerate() {
        assert_eq!(
            fingerprint(&machine, rf, 2),
            solo_fp,
            "forked lane {lane}: state must stay frozen at the abort point"
        );
    }
}

#[test]
fn fork_width_is_validated_not_clamped() {
    let (_, program) = compile_workload("mm");
    let mut root = Machine::from_program(Arc::clone(&program));
    root.run_vcycles(2).unwrap();
    let cp = root.checkpoint();
    for bad in [0usize, MAX_LANES + 1, MAX_LANES * 4] {
        match cp.fork(bad) {
            Err(MachineError::ForkWidth { requested }) => assert_eq!(requested, bad),
            other => panic!("fork({bad}): expected ForkWidth, got {other:?}"),
        }
    }
    // The boundary widths are fine.
    assert_eq!(cp.fork(1).unwrap().lanes(), 1);
    assert_eq!(cp.fork(MAX_LANES).unwrap().lanes(), MAX_LANES);
}

#[test]
fn checkpoints_survive_their_source_machine() {
    // A checkpoint owns its state: dropping the machine (or mutating it
    // further) must not disturb snapshots already taken.
    let (_, program) = compile_workload("noc");
    let rf = program.config().regfile_size;
    let cp: Checkpoint;
    {
        let mut m = Machine::from_program(Arc::clone(&program));
        m.run_vcycles(4).unwrap();
        cp = m.checkpoint();
        m.run_vcycles(10).unwrap(); // mutate after snapshotting
    }
    let resumed = cp.boot();
    assert_eq!(resumed.counters().vcycles, 4);
    let mut replayed = Machine::from_program(Arc::clone(&program));
    replayed.run_vcycles(4).unwrap();
    assert_eq!(
        fingerprint(&resumed, rf, GRID),
        fingerprint(&replayed, rf, GRID),
        "snapshot must be an independent copy of the state at Vcycle 4"
    );
}
