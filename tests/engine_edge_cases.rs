//! Tape / micro-op edge cases: degenerate grids and programs that stress
//! the replay lowerings' boundary conditions — empty-body (epilogue-only)
//! cores, all-NOP bodies, a 1×1 grid, a grid at the 256-dimension
//! addressing limit, and Vcycles with zero sends. Every scenario runs
//! through the serial interpreter, the sharded BSP engine, the tape
//! replay, and the micro-op replay, and must agree bit-for-bit (or report
//! the identical error). Netlist-level scenarios additionally sweep every
//! backend through the unified `Simulator` trait.

use manticore::isa::{AluOp, Binary, CoreId, CoreImage, Instruction, MachineConfig, Reg};
use manticore::machine::{ExecMode, Machine, MachineError, ReplayEngine};
use manticore::netlist::NetlistBuilder;
use manticore::sim::backends;

fn r(n: u16) -> Reg {
    Reg(n)
}

fn empty_binary(w: u32, h: u32, vcycle_len: u32) -> Binary {
    Binary {
        grid_width: w,
        grid_height: h,
        vcycle_len,
        cores: vec![],
        exceptions: vec![],
        init_dram: vec![],
    }
}

/// Every engine variant: serial and 2-shard parallel, with replay off, on
/// the tape, and on micro-ops.
fn variants() -> Vec<(String, ExecMode, Option<ReplayEngine>)> {
    let mut v = Vec::new();
    for (mode, mname) in [
        (ExecMode::Serial, "serial"),
        (ExecMode::Parallel { shards: 2 }, "2shards"),
    ] {
        for (replay, rname) in [
            (None, ""),
            (Some(ReplayEngine::Tape), "+replay"),
            (Some(ReplayEngine::MicroOps), "+uops"),
        ] {
            v.push((format!("{mname}{rname}"), mode, replay));
        }
    }
    v
}

fn configure(m: &mut Machine, mode: ExecMode, replay: Option<ReplayEngine>) {
    m.set_exec_mode(mode);
    match replay {
        None => m.set_replay(false),
        Some(e) => m.set_replay_engine(e),
    }
}

/// Runs `vcycles` on every engine variant and asserts identical outcome,
/// counters, and probed registers against the serial interpreter.
fn assert_engines_agree(config: &MachineConfig, binary: &Binary, vcycles: u64, probes: &[Reg]) {
    let mut reference = Machine::load(config.clone(), binary).expect("load");
    reference.set_replay(false);
    let ref_out = reference.run_vcycles(vcycles).expect("reference run");

    for (what, mode, replay) in variants() {
        let mut m = Machine::load(config.clone(), binary).expect("load");
        configure(&mut m, mode, replay);
        let out = m
            .run_vcycles(vcycles)
            .unwrap_or_else(|e| panic!("{what}: run failed: {e}"));
        assert_eq!(ref_out.displays, out.displays, "{what}: displays");
        assert_eq!(ref_out.vcycles_run, out.vcycles_run, "{what}: vcycles");
        assert_eq!(reference.counters(), m.counters(), "{what}: counters");
        assert_eq!(
            reference.executed_per_core(),
            m.executed_per_core(),
            "{what}: executed"
        );
        for y in 0..config.grid_height as u8 {
            for x in 0..config.grid_width as u8 {
                for &p in probes {
                    let core = CoreId::new(x, y);
                    assert_eq!(
                        reference.read_reg(core, p),
                        m.read_reg(core, p),
                        "{what}: {core} {p}"
                    );
                }
            }
        }
    }
}

/// Runs on every engine variant and asserts all report the reference
/// engine's error.
fn assert_engines_agree_on_error(
    config: &MachineConfig,
    binary: &Binary,
    vcycles: u64,
    strict: bool,
) -> MachineError {
    let mut reference = Machine::load(config.clone(), binary).expect("load");
    reference.set_strict_hazards(strict);
    reference.set_replay(false);
    let ref_err = reference
        .run_vcycles(vcycles)
        .expect_err("reference must fail");

    for (what, mode, replay) in variants() {
        let mut m = Machine::load(config.clone(), binary).expect("load");
        m.set_strict_hazards(strict);
        configure(&mut m, mode, replay);
        let err = m
            .run_vcycles(vcycles)
            .expect_err(&format!("{what}: must fail"));
        assert_eq!(ref_err, err, "{what}: error diverged");
    }
    ref_err
}

#[test]
fn all_nop_bodies_run_on_every_engine() {
    // Nothing executes, but Vcycles still frame, wrap, and count. The
    // micro-op engine's active-core list is empty — the whole grid is
    // skipped — yet every counter matches the interpreter walking all
    // positions.
    let mut binary = empty_binary(2, 2, 7);
    for (x, y) in [(0u8, 0u8), (1, 0), (0, 1), (1, 1)] {
        binary.cores.push(CoreImage {
            core: CoreId::new(x, y),
            body: vec![Instruction::Nop; 5],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), 7)],
            init_scratch: vec![],
        });
    }
    let config = MachineConfig::with_grid(2, 2);
    assert_engines_agree(&config, &binary, 6, &[r(1)]);

    let m = Machine::load(config, &binary).unwrap();
    let (uops, fused) = m.micro_op_stats().expect("replayable");
    assert_eq!((uops, fused), (0, 0), "all-NOP program lowers to nothing");
}

#[test]
fn one_by_one_grid_runs_on_every_engine() {
    // The 1x1 grid: the privileged core is the whole machine; exercises
    // compute, scratchpad traffic, and predicate state with no NoC at all.
    let mut binary = empty_binary(1, 1, 10);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Instruction::Predicate { rs: r(2) },
            Instruction::LocalStore {
                rs_data: r(2),
                rs_addr: r(0),
                base: 11,
            },
            Instruction::LocalLoad {
                rd: r(3),
                rs_addr: r(0),
                base: 11,
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(2), 3)],
        init_scratch: vec![],
    });
    let config = MachineConfig {
        hazard_latency: 2,
        ..MachineConfig::with_grid(1, 1)
    };
    assert_engines_agree(&config, &binary, 8, &[r(1), r(2), r(3)]);
}

#[test]
fn grid_at_the_256_dimension_limit() {
    // 256x1: the largest addressable row. Core (255,0) sends across the
    // torus wrap to the privileged core; everything else is an idle
    // (empty-body, zero-epilogue) core the micro-op engine skips.
    let vcl = 24;
    let mut binary = empty_binary(256, 1, vcl);
    binary.cores.push(CoreImage {
        core: CoreId::new(255, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Instruction::Nop,
            Instruction::Nop,
            Instruction::Send {
                target: CoreId::new(0, 0),
                rd_remote: r(5),
                rs: r(1),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 0), (r(2), 2)],
        init_scratch: vec![],
    });
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Nop; 10],
        epilogue_len: 1,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    let config = MachineConfig {
        // Keep the 256-core grid light: small per-core memories.
        regfile_size: 16,
        scratch_words: 16,
        hazard_latency: 2,
        injection_latency: 2,
        hop_latency: 1,
        ..MachineConfig::with_grid(256, 1)
    };
    assert_engines_agree(&config, &binary, 5, &[r(1), r(5)]);
}

#[test]
fn zero_send_vcycles_run_on_every_engine() {
    // Pure compute, empty delivery schedule: the replay lowerings' send
    // collection and delivery phases see zero traffic.
    let mut binary = empty_binary(2, 1, 8);
    for x in 0..2u8 {
        binary.cores.push(CoreImage {
            core: CoreId::new(x, 0),
            body: vec![
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
                Instruction::Nop,
                Instruction::Nop,
                Instruction::Alu {
                    op: AluOp::Xor,
                    rd: r(3),
                    rs1: r(1),
                    rs2: r(2),
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(2), x as u16 + 1)],
            init_scratch: vec![],
        });
    }
    let config = MachineConfig {
        hazard_latency: 2,
        ..MachineConfig::with_grid(2, 1)
    };
    assert_engines_agree(&config, &binary, 6, &[r(1), r(3)]);

    let m = Machine::load(config, &binary).unwrap();
    assert_eq!(m.counters().sends, 0);
}

#[test]
fn epilogue_only_core_fails_identically_on_every_engine() {
    // A core with an empty body and a declared epilogue can never be
    // scheduled legally: its slot 0 issues at position 0, before any
    // message can arrive. Strict mode reports the empty slot at issue;
    // permissive mode reports the late delivery — identically on every
    // engine (the failure happens in the validation Vcycle, so the replay
    // lowerings never even engage).
    let mut binary = empty_binary(2, 1, 12);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Nop,
            Instruction::Send {
                target: CoreId::new(1, 0),
                rd_remote: r(5),
                rs: r(0),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    binary.cores.push(CoreImage {
        core: CoreId::new(1, 0),
        body: vec![],
        epilogue_len: 1,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    let config = MachineConfig {
        hazard_latency: 2,
        injection_latency: 2,
        hop_latency: 1,
        ..MachineConfig::with_grid(2, 1)
    };

    let strict_err = assert_engines_agree_on_error(&config, &binary, 3, true);
    assert!(
        matches!(
            strict_err,
            MachineError::MissingScheduledMessage {
                slot: 0,
                position: 0,
                ..
            }
        ),
        "unexpected strict error: {strict_err:?}"
    );
    let permissive_err = assert_engines_agree_on_error(&config, &binary, 3, false);
    assert!(
        matches!(permissive_err, MachineError::LateMessage { slot: 0, .. }),
        "unexpected permissive error: {permissive_err:?}"
    );
}

#[test]
fn simulator_trait_sweeps_degenerate_netlists() {
    // The same edge shapes at the `Simulator` level: a 1x1-grid counter
    // and a design whose state never changes, across every backend
    // `backends()` constructs (interpreter, tape replay, micro-op replay,
    // sharded BSP, and both Verilator-analog executors).
    for (label, grid, constant) in [("counter-1x1", 1usize, false), ("constant-2x2", 2, true)] {
        let mut b = NetlistBuilder::new(label);
        let reg = b.reg("state", 16, 5);
        if constant {
            // state' = state: zero-send, steady-state Vcycles.
            let q = reg.q();
            b.set_next(reg, q);
        } else {
            let one = b.lit(1, 16);
            let next = b.add(reg.q(), one);
            b.set_next(reg, next);
        }
        b.output("state", reg.q());
        let netlist = b.finish_build().expect("netlist");

        let config = MachineConfig::with_grid(grid, grid);
        let mut expected: Option<u64> = None;
        for mut sim in backends(&netlist, config, 2).expect("backends") {
            let outcome = sim.run_cycles(17).expect("run");
            assert_eq!(outcome.cycles_run, 17, "{label}: {}", sim.backend());
            let got = sim.rtl_reg("state").expect("state register").to_u64();
            match expected {
                None => expected = Some(got),
                Some(e) => assert_eq!(e, got, "{label}: {} diverged", sim.backend()),
            }
        }
        let want = if constant { 5 } else { 5 + 17 };
        assert_eq!(expected, Some(want), "{label}: wrong final state");
    }
}
