//! Hardened-serving suite: the server under hostile input.
//!
//! A live server on a loopback socket, attacked at every layer of the
//! stack — framing (hostile length prefixes, truncation), JSON (garbage,
//! depth bombs), protocol (type confusion), and admission (over-limit
//! netlists, quota exhaustion, compile deadlines) — plus the crash-safe
//! session path: park → restart → recover → resume, bit-identical to an
//! uninterrupted run. Every scenario ends the same way: the server is
//! still serving correct results.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use manticore::machine::{load_checkpoint, save_checkpoint, PersistError};
use manticore::netlist::Netlist;
use manticore::prelude::*;
use manticore_serve::client::Client;
use manticore_serve::fuzz::{run_fuzz, FuzzConfig};
use manticore_serve::json::Value;
use manticore_serve::proto::{JobResult, RejectLimit, Reply, Request, SubmitNetlistReq, SubmitReq};
use manticore_serve::server::{Server, ServerConfig};
use manticore_serve::wire::{self, WireLimits};

fn test_server(tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        workers: 2,
        lanes: 2,
        session_ttl: Duration::from_secs(60),
        reaper_period: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    Server::bind("127.0.0.1:0", cfg).expect("bind loopback")
}

fn expect_result(reply: Reply) -> JobResult {
    match reply {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

fn expect_reject(reply: Reply) -> (String, u64, Option<RejectLimit>) {
    match reply {
        Reply::Reject {
            reason,
            retry_after_ms,
            limit,
            ..
        } => (reason, retry_after_ms, limit),
        other => panic!("expected a reject, got {other:?}"),
    }
}

/// A server that answers a catalog submission correctly is alive and
/// sane — the post-condition of every attack below.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.local_addr()).unwrap();
    let r = expect_result(
        client
            .call(&Request::Submit(SubmitReq {
                id: 999,
                design: "counter".into(),
                grid: None,
                vcycles: 10,
                pokes: vec![],
                reads: vec!["count".into()],
                deadline_ms: None,
                park: false,
            }))
            .unwrap(),
    );
    assert_eq!(r.regs, vec![("count".to_string(), 10)]);
}

fn counter_netlist() -> Netlist {
    let mut b = NetlistBuilder::new("hardening_counter");
    let r = b.reg("count", 16, 0);
    let one = b.lit(1, 16);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("count", r.q());
    b.finish_build().unwrap()
}

fn submit_netlist(id: u64, netlist: Value, vcycles: u64, park: bool) -> Request {
    Request::SubmitNetlist(SubmitNetlistReq {
        id,
        netlist,
        grid: Some(4),
        vcycles,
        pokes: vec![],
        reads: vec!["count".into()],
        deadline_ms: None,
        park,
    })
}

/// Ground truth at the wire path's grid: a direct in-process run.
fn direct_wire_run(netlist: &Netlist, vcycles: u64) -> (String, u64) {
    let fleet = FleetSim::compile(netlist, MachineConfig::with_grid(4, 4), 2).expect("compiles");
    let run = fleet.run(vec![fleet.job(vcycles)]).pop().expect("one run");
    assert!(run.result.is_ok());
    let fingerprint = format!("{:#018x}", run.sim().machine().state_fingerprint());
    let value = run
        .sim()
        .read_rtl_reg_by_name("count")
        .expect("reg")
        .to_u64();
    (fingerprint, value)
}

// ---------------------------------------------------------------------------
// Framing and parsing under attack.

#[test]
fn hostile_length_prefixes_do_not_kill_the_server() {
    let server = test_server(|_| {});
    for prefix in [u32::MAX, 0x8000_0000, (1u32 << 24) + 1] {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&prefix.to_be_bytes()).unwrap();
        // The server must drop the connection without allocating the
        // claimed buffer; a closed socket reads EOF or errors.
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink);
        assert!(sink.is_empty(), "no reply to an unframeable prefix");
    }
    assert_still_serving(&server);
}

#[test]
fn truncated_frames_do_not_kill_the_server() {
    let server = test_server(|_| {});
    for (claimed, sent) in [(1000u32, 10usize), (64, 0), (1 << 20, 100)] {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&claimed.to_be_bytes()).unwrap();
        raw.write_all(&vec![b'x'; sent]).unwrap();
        drop(raw); // the rest of the frame never arrives
    }
    assert_still_serving(&server);
}

#[test]
fn a_json_depth_bomb_is_an_error_not_a_stack_overflow() {
    let server = test_server(|_| {});
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut text = String::from("{\"op\":");
    for _ in 0..100_000 {
        text.push('[');
    }
    for _ in 0..100_000 {
        text.push(']');
    }
    text.push('}');
    raw.write_all(&(text.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(text.as_bytes()).unwrap();
    // Parse error → error reply (or connection close); never a crash.
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut sink = [0u8; 64];
    let _ = raw.read(&mut sink);
    assert_still_serving(&server);
}

#[test]
fn type_confused_requests_get_error_replies_on_a_live_connection() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.local_addr()).unwrap();
    let corpus = vec![
        Value::obj(vec![("op", Value::Int(7))]),
        Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("id", Value::Str("NaN".into())),
            ("design", Value::Str("counter".into())),
            ("vcycles", Value::Int(1)),
        ]),
        Value::obj(vec![
            ("op", Value::Str("submit_netlist".into())),
            ("id", Value::Int(1)),
            ("netlist", Value::Str("not an object".into())),
            ("vcycles", Value::Int(1)),
        ]),
        Value::Arr(vec![Value::Str("stats".into())]),
        Value::Bool(true),
    ];
    for (i, frame) in corpus.into_iter().enumerate() {
        match client.call_value(&frame).unwrap() {
            Reply::Error { .. } => {}
            other => panic!("frame {i}: expected an error reply, got {other:?}"),
        }
    }
    assert_still_serving(&server);
}

// ---------------------------------------------------------------------------
// Netlist admission limits — one negative test per limit.

#[test]
fn every_wire_limit_rejects_with_its_name_before_compiling() {
    // Tiny limits so the offending payloads stay tiny too.
    let limits = WireLimits {
        grid_cores: 16,
        nets: 4,
        registers: 2,
        memories: 1,
        memory_words: 64,
        outputs: 2,
        displays: 1,
        expects: 1,
        finishes: 1,
        netlist_bytes: 4096,
    };
    let server = test_server(|cfg| cfg.wire_limits = limits);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let arr_of = |n: usize, v: &Value| Value::Arr(vec![v.clone(); n]);
    let empty_obj = Value::obj(vec![]);
    let base = |field: &str, count: usize| {
        let filler = arr_of(count, &empty_obj);
        let pick = |name: &str, fallback: Value| {
            if name == field {
                filler.clone()
            } else {
                fallback
            }
        };
        Value::obj(vec![
            ("version", Value::Int(1)),
            ("name", Value::Str("over".into())),
            ("nets", pick("nets", Value::Arr(vec![]))),
            ("registers", pick("registers", Value::Arr(vec![]))),
            ("memories", pick("memories", Value::Arr(vec![]))),
            ("outputs", pick("outputs", Value::Arr(vec![]))),
            ("displays", pick("displays", Value::Arr(vec![]))),
            ("expects", pick("expects", Value::Arr(vec![]))),
            ("finishes", pick("finishes", Value::Arr(vec![]))),
        ])
    };

    let cases: Vec<(&str, Request)> = vec![
        ("nets", submit_netlist(1, base("nets", 5), 1, false)),
        (
            "registers",
            submit_netlist(2, base("registers", 3), 1, false),
        ),
        ("memories", submit_netlist(3, base("memories", 2), 1, false)),
        (
            "memory_words",
            submit_netlist(
                4,
                Value::obj(vec![
                    ("version", Value::Int(1)),
                    ("name", Value::Str("deep".into())),
                    ("nets", Value::Arr(vec![])),
                    ("registers", Value::Arr(vec![])),
                    (
                        "memories",
                        Value::Arr(vec![Value::obj(vec![
                            ("name", Value::Str("m".into())),
                            ("width", Value::Int(16)),
                            ("depth", Value::Int(65)),
                            ("init", Value::Arr(vec![])),
                            ("writes", Value::Arr(vec![])),
                        ])]),
                    ),
                    ("outputs", Value::Arr(vec![])),
                ]),
                1,
                false,
            ),
        ),
        ("outputs", submit_netlist(5, base("outputs", 3), 1, false)),
        ("displays", submit_netlist(6, base("displays", 2), 1, false)),
        ("expects", submit_netlist(7, base("expects", 2), 1, false)),
        ("finishes", submit_netlist(8, base("finishes", 2), 1, false)),
        (
            "grid_cores",
            Request::SubmitNetlist(SubmitNetlistReq {
                id: 9,
                netlist: base("", 0),
                grid: Some(5), // 25 cores > 16
                vcycles: 1,
                pokes: vec![],
                reads: vec![],
                deadline_ms: None,
                park: false,
            }),
        ),
        (
            "netlist_bytes",
            submit_netlist(10, base("nets", 0).with_padding(5000), 1, false),
        ),
    ];
    for (want_limit, request) in cases {
        let (reason, retry_after_ms, limit) = expect_reject(client.call(&request).unwrap());
        assert_eq!(reason, "netlist_limit", "limit `{want_limit}`");
        assert_eq!(retry_after_ms, 0, "limit rejects are permanent");
        let limit = limit.unwrap_or_else(|| panic!("`{want_limit}` reject must name its limit"));
        assert_eq!(limit.limit, want_limit);
        assert!(limit.got > limit.max, "{want_limit}: got > max");
    }
    // Nothing over-limit ever reached the compiler.
    assert_eq!(server.cache_stats().misses, 0);
    assert_still_serving(&server);
}

/// Pads a netlist object with an ignored string field to inflate its
/// rendered size past a byte limit.
trait Pad {
    fn with_padding(self, bytes: usize) -> Value;
}
impl Pad for Value {
    fn with_padding(self, bytes: usize) -> Value {
        match self {
            Value::Obj(mut fields) => {
                fields.push(("padding".to_string(), Value::Str("x".repeat(bytes))));
                Value::Obj(fields)
            }
            other => other,
        }
    }
}

#[test]
fn the_connection_netlist_quota_is_permanent_and_per_connection() {
    let encoded = wire::encode_netlist(&counter_netlist());
    let one_render = encoded.render().len() as u64;
    // Room for one submission, not two.
    let server = test_server(|cfg| cfg.conn_netlist_bytes = one_render + one_render / 2);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let r = expect_result(
        client
            .call(&submit_netlist(1, encoded.clone(), 5, false))
            .unwrap(),
    );
    assert_eq!(r.regs, vec![("count".to_string(), 5)]);

    let (reason, retry_after_ms, limit) = expect_reject(
        client
            .call(&submit_netlist(2, encoded.clone(), 5, false))
            .unwrap(),
    );
    assert_eq!(reason, "netlist_quota");
    assert_eq!(retry_after_ms, 0, "quota rejects are permanent");
    assert_eq!(limit.unwrap().limit, "conn_netlist_bytes");

    // The quota is per-connection: a fresh connection starts clean.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    let r = expect_result(fresh.call(&submit_netlist(3, encoded, 5, false)).unwrap());
    assert_eq!(r.regs, vec![("count".to_string(), 5)]);
}

#[test]
fn a_zero_compile_deadline_rejects_untrusted_compiles_but_not_catalog_jobs() {
    let server = test_server(|cfg| cfg.compile_deadline = Some(Duration::ZERO));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let encoded = wire::encode_netlist(&counter_netlist());
    let (reason, retry_after_ms, _) =
        expect_reject(client.call(&submit_netlist(1, encoded, 5, false)).unwrap());
    assert_eq!(reason, "compile_deadline");
    assert_eq!(retry_after_ms, 0);
    // Catalog designs are trusted: no deadline applies, and the server
    // is fully functional after the rejected compile.
    assert_still_serving(&server);
}

#[test]
fn a_valid_wire_netlist_is_bit_identical_to_the_direct_fleet() {
    let server = test_server(|_| {});
    let netlist = counter_netlist();
    let (want_fp, want_val) = direct_wire_run(&netlist, 50);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let r = expect_result(
        client
            .call(&submit_netlist(
                1,
                wire::encode_netlist(&netlist),
                50,
                false,
            ))
            .unwrap(),
    );
    assert_eq!(r.outcome, "budget");
    assert_eq!(r.fingerprint, want_fp, "wire round-trip changes nothing");
    assert_eq!(r.regs, vec![("count".to_string(), want_val)]);
}

// ---------------------------------------------------------------------------
// The checkpoint persist format, against a real compiled program.

#[test]
fn persisted_checkpoints_resume_bit_identically() {
    let netlist = counter_netlist();
    let fleet = FleetSim::compile(&netlist, MachineConfig::with_grid(2, 2), 1).unwrap();
    let mut straight = Machine::from_program(Arc::clone(fleet.program()));
    let mut parked = Machine::from_program(Arc::clone(fleet.program()));
    straight.run_vcycles(10).unwrap();
    parked.run_vcycles(10).unwrap();

    let bytes = save_checkpoint(&parked.checkpoint());
    drop(parked); // nothing survives but the bytes
    let mut revived = load_checkpoint(&bytes, fleet.program()).unwrap().boot();

    straight.run_vcycles(25).unwrap();
    revived.run_vcycles(25).unwrap();
    assert_eq!(
        revived.state_fingerprint(),
        straight.state_fingerprint(),
        "save → load → resume == uninterrupted"
    );
}

#[test]
fn corrupt_or_mismatched_checkpoints_are_typed_errors() {
    let netlist = counter_netlist();
    let fleet = FleetSim::compile(&netlist, MachineConfig::with_grid(2, 2), 1).unwrap();
    let mut machine = Machine::from_program(Arc::clone(fleet.program()));
    machine.run_vcycles(5).unwrap();
    let bytes = save_checkpoint(&machine.checkpoint());

    // Any single flipped byte fails the checksum.
    for pos in [0, bytes.len() / 3, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        assert!(
            load_checkpoint(&bad, fleet.program()).is_err(),
            "flip at {pos} must not load"
        );
    }
    // Truncation at any point is an error, not a partial load.
    for keep in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(load_checkpoint(&bytes[..keep], fleet.program()).is_err());
    }
    // A checkpoint only rebinds to a program of the same shape.
    let other = FleetSim::compile(&netlist, MachineConfig::with_grid(3, 3), 1).unwrap();
    match load_checkpoint(&bytes, other.program()) {
        Err(PersistError::ProgramMismatch { .. }) => {}
        other => panic!("expected ProgramMismatch, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Crash-safe sessions: park → restart → recover → resume.

fn temp_session_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("manticore-hardening-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn recovered_sessions_resume_bit_identically_under_their_original_ids() {
    let dir = temp_session_dir("recover");
    let netlist = counter_netlist();

    // Server #1: park one catalog session and one wire-netlist session.
    let (catalog_id, wire_id) = {
        let server = test_server(|cfg| cfg.session_dir = Some(dir.clone()));
        let mut client = Client::connect(server.local_addr()).unwrap();
        let catalog = expect_result(
            client
                .call(&Request::Submit(SubmitReq {
                    id: 1,
                    design: "accum".into(),
                    grid: None,
                    vcycles: 30,
                    pokes: vec![("step".into(), 3)],
                    reads: vec![],
                    deadline_ms: None,
                    park: true,
                }))
                .unwrap(),
        );
        let wire = expect_result(
            client
                .call(&submit_netlist(2, wire::encode_netlist(&netlist), 30, true))
                .unwrap(),
        );
        (
            catalog.session.expect("catalog job parked"),
            wire.session.expect("wire job parked"),
        )
        // Server #1 dies here (graceful in-process; the SIGKILL variant
        // lives in the serve_recovery bench). Spilled files survive.
    };

    // Server #2 over the same directory recovers both sessions.
    let server = test_server(|cfg| cfg.session_dir = Some(dir.clone()));
    let stats = server.session_stats();
    assert_eq!(stats.recovered, 2, "both sessions recovered");
    assert_eq!(stats.live, 2);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let resume = |client: &mut Client, id: u64, session: &str, reads: Vec<String>| {
        expect_result(
            client
                .call(&Request::Resume(manticore_serve::proto::ResumeReq {
                    id,
                    session: session.to_string(),
                    vcycles: 70,
                    pokes: vec![],
                    reads,
                    park: false,
                }))
                .unwrap(),
        )
    };
    // Catalog session: 30 pre-crash + 70 post-recovery == 100 straight.
    let continued = resume(&mut client, 3, &catalog_id, vec!["acc".into()]);
    let (netlist_acc, config) = manticore_serve::catalog::lookup("accum", None).unwrap();
    let fleet = FleetSim::compile_with(
        &netlist_acc,
        &CompileOptions {
            config,
            ..Default::default()
        },
        2,
    )
    .unwrap();
    let job = fleet.job(100).with_reg("step", 3).unwrap();
    let run = fleet.run(vec![job]).pop().unwrap();
    let want_fp = format!("{:#018x}", run.sim().machine().state_fingerprint());
    assert_eq!(
        continued.fingerprint, want_fp,
        "catalog session bit-identical"
    );

    // Wire session: same property at the wire path's grid.
    let continued = resume(&mut client, 4, &wire_id, vec!["count".into()]);
    let (want_fp, want_val) = direct_wire_run(&netlist, 100);
    assert_eq!(continued.fingerprint, want_fp, "wire session bit-identical");
    assert_eq!(continued.regs, vec![("count".to_string(), want_val)]);

    // Consumed sessions are gone from disk: a third server recovers none.
    drop(client);
    drop(server);
    let server = test_server(|cfg| cfg.session_dir = Some(dir.clone()));
    assert_eq!(server.session_stats().recovered, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_spill_file_does_not_block_recovery_of_the_rest() {
    let dir = temp_session_dir("corrupt");
    {
        let server = test_server(|cfg| cfg.session_dir = Some(dir.clone()));
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = expect_result(
            client
                .call(&Request::Submit(SubmitReq {
                    id: 1,
                    design: "counter".into(),
                    grid: None,
                    vcycles: 10,
                    pokes: vec![],
                    reads: vec![],
                    deadline_ms: None,
                    park: true,
                }))
                .unwrap(),
        );
        r.session.expect("parked");
    }
    // Vandalize the directory alongside the good spill.
    std::fs::write(dir.join("s-666.mses"), b"definitely not a session").unwrap();

    let server = test_server(|cfg| cfg.session_dir = Some(dir.clone()));
    let stats = server.session_stats();
    assert_eq!(stats.recovered, 1, "the good session still recovers");
    assert_still_serving(&server);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The fuzzer, end to end.

#[test]
fn a_seeded_fuzz_run_leaves_the_server_alive_and_leak_free() {
    let server = test_server(|_| {});
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        let config = FuzzConfig {
            seed,
            frames: 200,
            probe_timeout: Duration::from_secs(30),
        };
        let report = run_fuzz(server.local_addr(), &config).expect("server survives the fuzz");
        assert_eq!(report.live_sessions, 0, "seed {seed} leaked sessions");
        assert!(report.replies > 0, "probes got answers");
    }
    assert_still_serving(&server);
}
