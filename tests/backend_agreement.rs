//! Backend agreement: the Verilator-analog tape simulators (serial and
//! macro-task parallel) must agree with the reference evaluator on the
//! real workloads — the baseline side of Table 3 rests on this.

use manticore::netlist::eval::Evaluator;
use manticore::refsim::{ParallelSim, SerialSim, Tape};
use manticore::workloads;

#[test]
fn serial_tape_matches_evaluator_on_all_workloads() {
    for w in workloads::all() {
        let tape = Tape::compile(&w.netlist)
            .unwrap_or_else(|e| panic!("{}: tape failed: {e}", w.name));
        let mut fast = SerialSim::new(&tape);
        let mut slow = Evaluator::new(&w.netlist);
        for cycle in 0..60u64 {
            let fe = fast.step();
            let se = slow.step();
            assert_eq!(
                fe.displays, se.displays,
                "{}: displays at cycle {cycle}",
                w.name
            );
            for (ri, reg) in w.netlist.registers().iter().enumerate() {
                assert_eq!(
                    fast.reg_value(ri).to_u64(),
                    slow.reg_value(ri).to_u64(),
                    "{}: register `{}` at cycle {cycle}",
                    w.name,
                    reg.name
                );
            }
            if se.finished {
                break;
            }
        }
    }
}

#[test]
fn parallel_tape_matches_serial_on_all_workloads() {
    for w in workloads::all() {
        let tape = Tape::compile(&w.netlist).unwrap();
        let cycles = 40;
        let mut serial = SerialSim::new(&tape);
        for _ in 0..cycles {
            serial.step();
        }
        for threads in [2, 4] {
            let par = ParallelSim::new(&tape, threads, 32);
            let run = par.run(cycles);
            assert!(
                run.failed_assert.is_none(),
                "{}: parallel run failed an assertion",
                w.name
            );
            for ri in 0..w.netlist.registers().len() {
                assert_eq!(
                    run.final_regs[ri],
                    serial.reg_value(ri).to_u64(),
                    "{}: register {ri} diverged with {threads} threads",
                    w.name
                );
            }
        }
    }
}

#[test]
fn step_sizes_span_the_expected_range() {
    // The suite must exercise a wide range of granularities for the
    // scaling experiments to be meaningful.
    let sizes: Vec<usize> = workloads::all()
        .iter()
        .map(|w| Tape::compile(&w.netlist).unwrap().step_size())
        .collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        max / min >= 10,
        "step sizes {sizes:?} span less than one order of magnitude"
    );
}
