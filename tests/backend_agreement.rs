//! Backend agreement: the Verilator-analog tape simulators (serial and
//! macro-task parallel) must agree with the reference evaluator on the
//! real workloads — the baseline side of Table 3 rests on this — and
//! every `Simulator` backend `backends()` constructs (machine
//! interpreter, tape replay, micro-op replay, sharded BSP, and the two
//! Verilator-analog executors) must agree with each other through
//! nothing but the trait.

use manticore::isa::MachineConfig;
use manticore::netlist::eval::Evaluator;
use manticore::refsim::{ParallelSim, SerialSim, Tape};
use manticore::sim::backends;
use manticore::workloads;

#[test]
fn serial_tape_matches_evaluator_on_all_workloads() {
    for w in workloads::all() {
        let tape =
            Tape::compile(&w.netlist).unwrap_or_else(|e| panic!("{}: tape failed: {e}", w.name));
        let mut fast = SerialSim::new(&tape);
        let mut slow = Evaluator::new(&w.netlist);
        for cycle in 0..60u64 {
            let fe = fast.step();
            let se = slow.step();
            assert_eq!(
                fe.displays, se.displays,
                "{}: displays at cycle {cycle}",
                w.name
            );
            for (ri, reg) in w.netlist.registers().iter().enumerate() {
                assert_eq!(
                    fast.reg_value(ri).to_u64(),
                    slow.reg_value(ri).to_u64(),
                    "{}: register `{}` at cycle {cycle}",
                    w.name,
                    reg.name
                );
            }
            if se.finished {
                break;
            }
        }
    }
}

#[test]
fn parallel_tape_matches_serial_on_all_workloads() {
    for w in workloads::all() {
        let tape = Tape::compile(&w.netlist).unwrap();
        let cycles = 40;
        let mut serial = SerialSim::new(&tape);
        for _ in 0..cycles {
            serial.step();
        }
        for threads in [2, 4] {
            let par = ParallelSim::new(&tape, threads, 32);
            let run = par.run(cycles);
            assert!(
                run.failed_assert.is_none(),
                "{}: parallel run failed an assertion",
                w.name
            );
            for ri in 0..w.netlist.registers().len() {
                assert_eq!(
                    run.final_regs[ri],
                    serial.reg_value(ri).to_u64(),
                    "{}: register {ri} diverged with {threads} threads",
                    w.name
                );
            }
        }
    }
}

#[test]
fn every_simulator_backend_agrees_on_every_workload() {
    // One interface, every engine: run each workload on all backends and
    // require identical architectural observations — displays (which carry
    // the self-checking testbench's output) and every RTL register that
    // survives in all backends' compiled forms.
    for w in workloads::all() {
        let cycles = w.test_cycles.min(24);
        let config = MachineConfig::with_grid(6, 6);
        let mut sims = backends(&w.netlist, config, 2)
            .unwrap_or_else(|e| panic!("{}: backend construction failed: {e}", w.name));
        let mut results = Vec::new();
        for sim in &mut sims {
            let name = sim.backend();
            let outcome = sim
                .run_cycles(cycles)
                .unwrap_or_else(|e| panic!("{}: {name} failed: {e}", w.name));
            results.push((name, outcome));
        }
        let (ref_name, ref_outcome) = &results[0];
        for (name, outcome) in &results[1..] {
            assert_eq!(
                &ref_outcome.displays, &outcome.displays,
                "{}: displays diverged between {ref_name} and {name}",
                w.name
            );
            assert_eq!(
                ref_outcome.finished, outcome.finished,
                "{}: finish diverged between {ref_name} and {name}",
                w.name
            );
        }
        // Register agreement, by name, where the register exists in every
        // backend's compiled design (optimization may prune some).
        let mut compared = 0usize;
        for reg in w.netlist.registers() {
            let values: Vec<_> = sims.iter().map(|s| s.rtl_reg(&reg.name)).collect();
            if values.iter().any(|v| v.is_none()) {
                continue;
            }
            compared += 1;
            for (i, v) in values.iter().enumerate().skip(1) {
                assert_eq!(
                    values[0].as_ref().unwrap().to_u64(),
                    v.as_ref().unwrap().to_u64(),
                    "{}: register `{}` diverged between {} and {}",
                    w.name,
                    reg.name,
                    sims[0].backend(),
                    sims[i].backend()
                );
            }
        }
        assert!(compared > 0, "{}: no registers were comparable", w.name);
        // Perf snapshots are coherent: every backend simulated the cycles.
        for sim in &sims {
            assert_eq!(
                sim.perf().cycles,
                ref_outcome.cycles_run,
                "{}",
                sim.backend()
            );
        }
    }
}

#[test]
fn soc_agrees_across_backends() {
    // The SoC compile-stress workload through every backend — `backends()`
    // compiles with worker threads, so this also drives the parallel pass
    // pipeline through a memory-heavy multi-tile design.
    let netlist = workloads::soc_sized(4, 3, 2000);
    let config = MachineConfig::with_grid(6, 6);
    let mut sims = backends(&netlist, config, 2).expect("soc backends");
    let mut results = Vec::new();
    for sim in &mut sims {
        let name = sim.backend();
        let outcome = sim
            .run_cycles(24)
            .unwrap_or_else(|e| panic!("soc: {name} failed: {e}"));
        results.push((name, outcome));
    }
    let (ref_name, ref_outcome) = &results[0];
    for (name, outcome) in &results[1..] {
        assert_eq!(
            &ref_outcome.displays, &outcome.displays,
            "soc: displays diverged between {ref_name} and {name}"
        );
        assert_eq!(
            ref_outcome.finished, outcome.finished,
            "soc: finish diverged between {ref_name} and {name}"
        );
    }
    let mut compared = 0usize;
    for reg in netlist.registers() {
        let values: Vec<_> = sims.iter().map(|s| s.rtl_reg(&reg.name)).collect();
        if values.iter().any(|v| v.is_none()) {
            continue;
        }
        compared += 1;
        for (i, v) in values.iter().enumerate().skip(1) {
            assert_eq!(
                values[0].as_ref().unwrap().to_u64(),
                v.as_ref().unwrap().to_u64(),
                "soc: register `{}` diverged between {} and {}",
                reg.name,
                sims[0].backend(),
                sims[i].backend()
            );
        }
    }
    assert!(compared > 0, "soc: no registers were comparable");
}

#[test]
fn step_sizes_span_the_expected_range() {
    // The suite must exercise a wide range of granularities for the
    // scaling experiments to be meaningful.
    let sizes: Vec<usize> = workloads::all()
        .iter()
        .map(|w| Tape::compile(&w.netlist).unwrap().step_size())
        .collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        max / min >= 10,
        "step sizes {sizes:?} span less than one order of magnitude"
    );
}
