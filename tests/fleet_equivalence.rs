//! The fleet engine must be architecturally invisible: a job set run on a
//! fleet — any worker count, any submission order — yields bit-identical
//! per-job outcomes to running each job alone on a `ManticoreSim`, and
//! the outputs come back in submission order.
//!
//! This is the across-runs analog of `parallel_grid_equivalence.rs`
//! (which pins the within-run engines): scheduling may only change *when*
//! a job runs, never *what* it computes.

use std::sync::Arc;

use manticore::bits::Bits;
use manticore::fleet::{FleetJob, FleetSim};
use manticore::isa::MachineConfig;
use manticore::machine::{ExecMode, Machine, ReplayEngine};
use manticore::util::SmallRng;
use manticore::workloads;
use manticore_fleet::{Fleet, JobOutput, SimJob};

const GRID: usize = 6;
const VCYCLES: u64 = 30;

/// Reads every RTL register back out of a machine using the compiler's
/// placement metadata (same probe as `parallel_grid_equivalence`).
fn rtl_regs(machine: &Machine, out: &manticore::compiler::CompileOutput) -> Vec<Bits> {
    out.optimized
        .registers()
        .iter()
        .enumerate()
        .map(|(ri, reg)| {
            let loc = &out.metadata.reg_locations[ri];
            let words: Vec<u16> = loc
                .words
                .iter()
                .map(|&(core, mreg)| machine.read_reg(core, mreg))
                .collect();
            Bits::from_words16(&words, reg.width)
        })
        .collect()
}

/// The engine-knob variants every job set cycles through.
fn variants() -> Vec<(&'static str, Option<ExecMode>, Option<ReplayEngine>, bool)> {
    vec![
        ("uops", None, Some(ReplayEngine::MicroOps), true),
        ("tape", None, Some(ReplayEngine::Tape), true),
        ("interp", None, None, false),
        (
            "parallel2+uops",
            Some(ExecMode::Parallel { shards: 2 }),
            Some(ReplayEngine::MicroOps),
            true,
        ),
    ]
}

#[test]
fn fleet_jobs_are_bit_identical_to_alone_runs() {
    // Three workloads spanning the parallelism spectrum; bc additionally
    // gets distinct input vectors (its per-pipe nonce registers).
    for wname in ["mm", "bc", "noc"] {
        let w = workloads::by_name(wname).unwrap();
        let fleet = FleetSim::compile(&w.netlist, MachineConfig::with_grid(GRID, GRID), 4)
            .unwrap_or_else(|e| panic!("{wname}: fleet compile failed: {e}"));
        let output = Arc::clone(fleet.output());

        // The job set: every engine variant, and for bc also a poked
        // nonce per variant so inputs genuinely differ between jobs.
        let mut jobs: Vec<FleetJob> = Vec::new();
        let mut alone: Vec<manticore::ManticoreSim> = Vec::new();
        for (vi, (_, mode, engine, replay)) in variants().into_iter().enumerate() {
            let mut job = fleet.job(VCYCLES).replay(replay);
            let mut solo = manticore::ManticoreSim::from_output(
                output.clone(),
                fleet.program().config().clone(),
            )
            .unwrap();
            solo.set_replay(replay);
            if let Some(mode) = mode {
                job = job.exec_mode(mode);
                solo.set_exec_mode(mode);
            }
            if let Some(engine) = engine {
                job = job.replay_engine(engine);
                solo.set_replay_engine(engine);
            }
            if wname == "bc" {
                let nonce = (vi as u64 + 1) << 20;
                job = job.with_reg("nonce0", nonce).unwrap();
                assert!(solo.write_rtl_reg_by_name("nonce0", nonce));
            }
            jobs.push(job);
            alone.push(solo);
        }

        let runs = fleet.run(jobs);
        assert_eq!(runs.len(), alone.len());
        for ((vi, run), solo) in runs.into_iter().enumerate().zip(alone.iter_mut()) {
            let what = format!("{wname} variant {vi}");
            assert_eq!(run.index, vi, "{what}: submission order broken");
            let solo_result = solo.run(VCYCLES);
            match (&run.result, &solo_result) {
                (Ok(f), Ok(s)) => {
                    assert_eq!(f.displays, s.displays, "{what}: displays diverged");
                    assert_eq!(f.finished, s.finished, "{what}: finish flag diverged");
                    assert_eq!(
                        f.vcycles_run, s.vcycles_run,
                        "{what}: vcycle count diverged"
                    );
                }
                (Err(f), Err(s)) => {
                    assert_eq!(format!("{f}"), format!("{s}"), "{what}: errors diverged");
                }
                (f, s) => panic!("{what}: outcome kind diverged: {f:?} vs {s:?}"),
            }
            assert_eq!(
                run.sim().machine().counters(),
                solo.machine().counters(),
                "{what}: PerfCounters diverged"
            );
            let f_regs = rtl_regs(run.sim().machine(), &output);
            let s_regs = rtl_regs(solo.machine(), &output);
            for (ri, reg) in output.optimized.registers().iter().enumerate() {
                assert_eq!(
                    f_regs[ri], s_regs[ri],
                    "{what}: register `{}` diverged",
                    reg.name
                );
            }
        }
    }
}

/// Builds the machine-level job set for the worker-count / submission
/// order sweeps: one shared program; job *i* gets variant `order[i]`'s
/// engine knobs and a Vcycle budget staggered by the variant index, so
/// the jobs are genuinely distinguishable in their outcomes.
fn machine_job_set(
    program: &Arc<manticore::machine::CompiledProgram>,
    order: &[usize],
) -> Vec<SimJob> {
    let variants = variants();
    order
        .iter()
        .map(|&i| {
            let (_, mode, engine, replay) = variants[i % variants.len()];
            // Distinct budgets (30, 31, 32, ...) make every job's final
            // state unique, so a mixed-up result slot cannot pass.
            let mut job =
                SimJob::new(program, VCYCLES + (i / variants.len()) as u64).replay(replay);
            if let Some(mode) = mode {
                job = job.exec_mode(mode);
            }
            if let Some(engine) = engine {
                job = job.replay_engine(engine);
            }
            job
        })
        .collect()
}

/// Fingerprints one job output: counters plus the full final register
/// file of every core (read through the flushed host view).
fn fingerprint(out: &JobOutput, regfile_size: usize, grid: usize) -> Vec<u64> {
    let mut fp = Vec::new();
    let c = out.machine().counters();
    fp.extend_from_slice(&[
        c.compute_cycles,
        c.vcycles,
        c.instructions,
        c.sends,
        c.messages_delivered,
        c.exceptions,
    ]);
    for y in 0..grid {
        for x in 0..grid {
            for r in 0..regfile_size {
                fp.push(out.machine().read_reg(
                    manticore::isa::CoreId::new(x as u8, y as u8),
                    manticore::isa::Reg(r as u16),
                ) as u64);
            }
        }
    }
    fp
}

#[test]
fn fleet_results_independent_of_worker_count_and_submission_order() {
    let w = workloads::by_name("mm").unwrap();
    let config = MachineConfig::with_grid(GRID, GRID);
    let options = manticore::compiler::CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = manticore::compiler::compile(&w.netlist, &options).unwrap();
    let program =
        manticore::machine::CompiledProgram::compile_shared(config.clone(), &out.binary).unwrap();
    let rf = config.regfile_size;

    let n_jobs = 10;
    let natural: Vec<usize> = (0..n_jobs).collect();

    // Reference: one worker, natural order.
    let reference = Fleet::new(1).run(machine_job_set(&program, &natural));
    let ref_fps: Vec<Vec<u64>> = reference.iter().map(|o| fingerprint(o, rf, GRID)).collect();
    for (i, o) in reference.iter().enumerate() {
        assert_eq!(o.index, i, "reference collection order");
        assert!(o.result.is_ok());
    }

    // Same set across worker counts: identical outputs, identical order.
    for workers in [2, 4] {
        let outputs = Fleet::new(workers).run(machine_job_set(&program, &natural));
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(o.index, i, "{workers} workers: collection order");
            assert_eq!(
                fingerprint(o, rf, GRID),
                ref_fps[i],
                "{workers} workers: job {i} diverged from the 1-worker run"
            );
        }
    }

    // Shuffled submission: job *content* follows the shuffle, outputs
    // still arrive in (new) submission order, and each job's outcome is
    // bit-identical to the same job in the natural-order run.
    let mut rng = SmallRng::seed_from_u64(0xf1ee7);
    for round in 0..3u64 {
        let mut shuffled = natural.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..i + 1));
        }
        let outputs = Fleet::new(3).run(machine_job_set(&program, &shuffled));
        for (slot, o) in outputs.iter().enumerate() {
            assert_eq!(o.index, slot, "round {round}: collection order");
            assert_eq!(
                fingerprint(o, rf, GRID),
                ref_fps[shuffled[slot]],
                "round {round}: shuffled job at slot {slot} (= job {}) diverged",
                shuffled[slot]
            );
        }
    }
}

#[test]
fn resumed_job_pokes_land_before_the_first_resumed_vcycle() {
    // Regression: `SimJob::poke` on a *resumed* machine used to write
    // only the committed register word, so a write still in flight in the
    // pipeline ring from the previous segment would commit on top of the
    // poke and silently erase it — fresh jobs (whose rings are empty at
    // submission) never saw this. The contract is symmetric: a poke lands
    // before the first Vcycle of the segment, resumed or not.
    use manticore::isa::{AluOp, Binary, CoreId, CoreImage, Instruction, Reg};

    let binary = Binary {
        grid_width: 1,
        grid_height: 1,
        vcycle_len: 4,
        cores: vec![CoreImage {
            core: CoreId::new(0, 0),
            body: vec![Instruction::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Reg(2),
            }],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(Reg(1), 0), (Reg(2), 1)],
            init_scratch: vec![],
        }],
        exceptions: vec![],
        init_dram: vec![],
    };
    // Pipeline exactly as deep as the Vcycle: every segment ends with
    // its last `r1` write still in the ring, which is the shape that
    // exposed the bug.
    let config = manticore::isa::MachineConfig {
        hazard_latency: 4,
        ..manticore::isa::MachineConfig::with_grid(1, 1)
    };
    let program = manticore::machine::CompiledProgram::compile_shared(config, &binary).unwrap();
    let core = CoreId::new(0, 0);
    let fleet = Fleet::new(2);

    // Segment 1: three Vcycles of counting. The Vcycle-3 increment (to 3)
    // is still in flight when the job returns.
    let first = fleet.run(vec![SimJob::new(&program, 3).strict_hazards(false)]);
    let machine = first.into_iter().next().unwrap().into_machine();
    assert_eq!(
        machine.read_reg(core, Reg(1)),
        3,
        "flushed view after segment 1"
    );

    // Segment 2: resume with a poke. The poke must override the in-flight
    // write too — the broken behavior committed the stale 3 over the 100
    // and finished at 7 instead of 104.
    let resumed = fleet.run(vec![SimJob::resume(machine, 4)
        .poke(core, Reg(1), 100)
        .strict_hazards(false)]);
    let resumed_r1 = resumed[0].machine().read_reg(core, Reg(1));

    // Reference: the same poke on a *fresh* job, run for the same number
    // of Vcycles — the semantics resumed jobs must match.
    let fresh = fleet.run(vec![SimJob::new(&program, 4)
        .poke(core, Reg(1), 100)
        .strict_hazards(false)]);
    let fresh_r1 = fresh[0].machine().read_reg(core, Reg(1));

    assert_eq!(fresh_r1, 104, "fresh-job poke semantics");
    assert_eq!(
        resumed_r1, fresh_r1,
        "a resumed job's pokes must land before its first Vcycle, like a fresh job's"
    );

    // Same contract through the gang fork path: pokes planted on forked
    // lanes override in-flight state from before the fork.
    let root = fleet.run(vec![SimJob::new(&program, 3).strict_hazards(false)]);
    let cp = root[0].machine().checkpoint();
    let mut gang = cp.fork(2).unwrap();
    gang.poke_reg(1, core, Reg(1), 100);
    gang.run_vcycles(4);
    let lanes = gang.into_machines();
    assert_eq!(
        lanes[0].read_reg(core, Reg(1)),
        7,
        "unpoked lane keeps counting"
    );
    assert_eq!(
        lanes[1].read_reg(core, Reg(1)),
        fresh_r1,
        "poked lane matches fresh-job semantics"
    );
}
