//! Wide-arithmetic boundary vectors, cross-checked across every backend
//! through the unified `Simulator` trait.
//!
//! The compiler lowers wide adds/subs into `AddCarry`/`SubBorrow` chains on
//! the machine, while the tape backends evaluate the same netlist with
//! host-width arithmetic — so agreement here pins the machine's
//! carry/borrow conventions (exhaustively unit-tested in
//! `manticore-machine`) against an independent implementation, on the
//! 16-bit word boundaries where a wrong convention would first show.

use manticore::isa::MachineConfig;
use manticore::netlist::NetlistBuilder;
use manticore::sim::backends;

/// Low-word boundary values: zero/one neighborhoods, the signed boundary,
/// and the wrap-around neighborhood.
const LO: [u64; 9] = [
    0x0000, 0x0001, 0x0002, 0x7ffe, 0x7fff, 0x8000, 0x8001, 0xfffe, 0xffff,
];
/// Partner low words chosen to force carries/borrows both ways.
const LO_B: [u64; 4] = [0x0001, 0x7fff, 0x8000, 0xffff];

const W: usize = 48;
const MASK: u64 = (1 << W) - 1;

/// 48-bit operands whose middle word is all-ones (`a`) / one (`b`), so a
/// low-word carry or borrow must propagate across the full chain.
fn operands(lo_a: u64, lo_b: u64) -> (u64, u64) {
    let a = (0x0001u64 << 32) | (0xffffu64 << 16) | lo_a;
    let b = (0x0002u64 << 32) | (0x0001u64 << 16) | lo_b;
    (a, b)
}

#[test]
fn carry_chains_agree_across_all_backends() {
    let mut b = NetlistBuilder::new("carry_chains");
    let mut expected: Vec<(String, u64)> = Vec::new();
    for (i, &lo_a) in LO.iter().enumerate() {
        for (j, &lo_b) in LO_B.iter().enumerate() {
            let (av, bv) = operands(lo_a, lo_b);
            let an = b.lit(av, W);
            let bn = b.lit(bv, W);
            let sum = b.add(an, bn);
            let diff = b.sub(an, bn);
            let add_reg = b.reg(format!("add_{i}_{j}"), W, 0);
            b.set_next(add_reg, sum);
            b.output(format!("add_{i}_{j}"), add_reg.q());
            let sub_reg = b.reg(format!("sub_{i}_{j}"), W, 0);
            b.set_next(sub_reg, diff);
            b.output(format!("sub_{i}_{j}"), sub_reg.q());
            expected.push((format!("add_{i}_{j}"), av.wrapping_add(bv) & MASK));
            expected.push((format!("sub_{i}_{j}"), av.wrapping_sub(bv) & MASK));
        }
    }
    let netlist = b.finish_build().expect("netlist builds");

    let config = MachineConfig::with_grid(6, 6);
    let mut sims = backends(&netlist, config, 2).expect("backends build");
    for sim in &mut sims {
        let name = sim.backend();
        sim.run_cycles(2).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (reg, want) in &expected {
            let got = sim
                .rtl_reg(reg)
                .unwrap_or_else(|| panic!("{name}: register {reg} missing"))
                .to_u64();
            assert_eq!(got, *want, "{name}: register {reg}");
        }
    }
}
