//! Whole-stack tests for the simulation service: a real server on a
//! loopback socket, real clients, and bit-identity checks against the
//! direct in-process fleet.
//!
//! Covered here, one scenario per test:
//! - cache hit vs miss produce bit-identical results, both identical to
//!   a direct `FleetSim` run;
//! - a stampede of identical submissions compiles exactly once
//!   (single-flight);
//! - a tiny byte budget forces LRU eviction and recompilation;
//! - admission control rejects past the high-water mark with a usable
//!   retry hint, and the retry succeeds;
//! - a mid-job disconnect cancels only the disconnecting client's work;
//! - park → resume continues a run with a state fingerprint identical
//!   to one uninterrupted run.

use std::time::Duration;

use manticore::prelude::*;
use manticore_serve::client::Client;
use manticore_serve::proto::{JobResult, Reply, Request, SubmitReq};
use manticore_serve::server::{Server, ServerConfig};

/// A small default server for tests: modest queue, fast reaper.
fn test_server(tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        workers: 2,
        lanes: 2,
        session_ttl: Duration::from_secs(10),
        reaper_period: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    Server::bind("127.0.0.1:0", cfg).expect("bind loopback")
}

fn submit(id: u64, design: &str, vcycles: u64, pokes: &[(&str, u64)], reads: &[&str]) -> Request {
    Request::Submit(SubmitReq {
        id,
        design: design.into(),
        grid: None,
        vcycles,
        pokes: pokes.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        reads: reads.iter().map(|r| r.to_string()).collect(),
        deadline_ms: None,
        park: false,
    })
}

fn expect_result(reply: Reply) -> JobResult {
    match reply {
        Reply::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

/// The ground truth: run the same scenario on a direct in-process fleet
/// and return (fingerprint, reg value).
fn direct_run(design: &str, vcycles: u64, pokes: &[(&str, u64)], read: &str) -> (String, u64) {
    let (netlist, config) = manticore_serve::catalog::lookup(design, None).expect("known design");
    let fleet = FleetSim::compile_with(
        &netlist,
        &CompileOptions {
            config,
            ..Default::default()
        },
        2,
    )
    .expect("compiles");
    let mut job = fleet.job(vcycles);
    for (name, value) in pokes {
        job = job.with_reg(name, *value).expect("known register");
    }
    let run = fleet.run(vec![job]).pop().expect("one run");
    assert!(run.result.is_ok());
    let fingerprint = format!("{:#018x}", run.sim().machine().state_fingerprint());
    let value = run.sim().read_rtl_reg_by_name(read).expect("reg").to_u64();
    (fingerprint, value)
}

#[test]
fn cache_hit_and_miss_are_bit_identical_to_the_direct_fleet() {
    let server = test_server(|_| {});
    #[allow(clippy::type_complexity)]
    let scenarios: [(&str, u64, &[(&str, u64)], &str); 3] = [
        ("counter", 100, &[("count", 7_000)], "count"),
        ("accum", 64, &[("acc", 5), ("step", 3)], "acc"),
        ("lfsr", 257, &[("lfsr", 0xBEEF)], "lfsr"),
    ];
    for (design, vcycles, pokes, read) in scenarios {
        let (want_fp, want_val) = direct_run(design, vcycles, pokes, read);
        // First submission compiles (miss), second is served from cache
        // (hit) — on a fresh connection, to prove sharing across conns.
        for round in 0..2 {
            let mut client = Client::connect(server.local_addr()).unwrap();
            let r = expect_result(
                client
                    .call(&submit(round, design, vcycles, pokes, &[read]))
                    .unwrap(),
            );
            assert_eq!(r.outcome, "budget", "{design} runs forever");
            assert_eq!(r.vcycles_run, vcycles);
            assert_eq!(r.fingerprint, want_fp, "{design} round {round}");
            assert_eq!(r.regs, vec![(read.to_string(), want_val)]);
        }
    }
    let stats = server.cache_stats();
    assert_eq!(stats.misses, 3, "one compile per design");
    assert_eq!(stats.hits, 3, "one hit per design");
}

#[test]
fn concurrent_identical_submissions_compile_exactly_once() {
    let server = test_server(|cfg| cfg.compile_slots = 1);
    let addr = server.local_addr();
    let results: Vec<JobResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    expect_result(
                        client
                            .call(&submit(i, "toggle", 50, &[], &["edges"]))
                            .unwrap(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let first = &results[0];
    for r in &results {
        assert_eq!(r.fingerprint, first.fingerprint, "all six agree");
        assert_eq!(r.regs, vec![("edges".to_string(), 25)]);
    }
    let stats = server.cache_stats();
    assert_eq!(stats.misses, 1, "single-flight: one compile for six conns");
    assert_eq!(stats.hits, 5);
}

#[test]
fn a_tiny_byte_budget_evicts_lru_and_recompiles() {
    // A 1-byte budget keeps at most the just-inserted entry, so every
    // design change evicts the previous one.
    let server = test_server(|cfg| cfg.cache_bytes = 1);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for (i, design) in ["counter", "accum", "counter"].iter().enumerate() {
        let r = expect_result(
            client
                .call(&submit(i as u64, design, 10, &[], &[]))
                .unwrap(),
        );
        assert_eq!(r.outcome, "budget");
    }
    let stats = server.cache_stats();
    assert_eq!(stats.misses, 3, "the evicted counter compiles again");
    assert_eq!(stats.hits, 0);
    assert!(stats.evictions >= 2, "each insert evicts its predecessor");
}

#[test]
fn admission_rejects_past_high_water_and_the_retry_succeeds() {
    let server = test_server(|cfg| cfg.queue_high_water = 2);
    // Connection A occupies the dispatcher with an effectively unbounded
    // job (it only ends when A disconnects and cancellation trips).
    let mut blocker = Client::connect(server.local_addr()).unwrap();
    blocker
        .send(&submit(0, "counter", u64::MAX / 2, &[], &[]))
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Connection B floods: with the dispatcher busy, at least one of
    // these must bounce off the high-water mark.
    let mut client = Client::connect(server.local_addr()).unwrap();
    for id in 1..=3u64 {
        client
            .send(&submit(
                id,
                "counter",
                10,
                &[("count", id * 10)],
                &["count"],
            ))
            .unwrap();
    }
    drop(blocker); // frees the dispatcher: A's job cancels at a Vcycle boundary

    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for _ in 0..3 {
        match client.recv().unwrap().expect("reply per submission") {
            Reply::Result(r) => accepted.push(r),
            Reply::Reject {
                id,
                reason,
                retry_after_ms,
                ..
            } => {
                assert_eq!(reason, "queue_full");
                assert!(retry_after_ms > 0, "the hint must be usable");
                rejected.push((id, retry_after_ms));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert!(
        !rejected.is_empty(),
        "high water must have bounced something"
    );
    assert!(!accepted.is_empty(), "below high water still admits");

    // Honor the hint, resubmit every bounced job, and expect results.
    for &(id, retry_after_ms) in &rejected {
        std::thread::sleep(Duration::from_millis(retry_after_ms));
        let r = expect_result(
            client
                .call(&submit(
                    id,
                    "counter",
                    10,
                    &[("count", id * 10)],
                    &["count"],
                ))
                .unwrap(),
        );
        accepted.push(r);
    }
    for r in &accepted {
        assert_eq!(r.regs, vec![("count".to_string(), r.id * 10 + 10)]);
    }
}

#[test]
fn disconnect_cancels_only_that_clients_jobs() {
    let server = test_server(|_| {});
    // A submits a job that would run for days; B submits real work.
    let mut a = Client::connect(server.local_addr()).unwrap();
    a.send(&submit(1, "lfsr", u64::MAX / 2, &[], &[])).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let mut b = Client::connect(server.local_addr()).unwrap();
    b.send(&submit(2, "counter", 1_000, &[("count", 5)], &["count"]))
        .unwrap();

    // A walks away. Its running job must cancel (freeing the fleet),
    // while B's job runs to completion with correct state.
    drop(a);
    let r = expect_result(b.recv().unwrap().expect("B's result"));
    assert_eq!(r.outcome, "budget");
    assert_eq!(r.vcycles_run, 1_000);
    assert_eq!(r.regs, vec![("count".to_string(), 1_005)]);

    // The server keeps serving afterwards — the cancellation did not
    // poison the dispatcher.
    let r = expect_result(b.call(&submit(3, "counter", 10, &[], &["count"])).unwrap());
    assert_eq!(r.regs, vec![("count".to_string(), 10)]);
}

#[test]
fn park_and_resume_match_one_uninterrupted_run_bit_for_bit() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Parked: 30 Vcycles now, 70 later.
    let first = expect_result(
        client
            .call(&Request::Submit(SubmitReq {
                id: 1,
                design: "accum".into(),
                grid: None,
                vcycles: 30,
                pokes: vec![("step".into(), 3)],
                reads: vec!["acc".into()],
                deadline_ms: None,
                park: true,
            }))
            .unwrap(),
    );
    let session = first.session.clone().expect("parked jobs return a session");
    let (_, want_30) = direct_run("accum", 30, &[("step", 3)], "acc");
    assert_eq!(first.regs, vec![("acc".to_string(), want_30)]);

    let second = expect_result(
        client
            .call(&Request::Resume(manticore_serve::proto::ResumeReq {
                id: 2,
                session: session.clone(),
                vcycles: 70,
                pokes: vec![],
                reads: vec!["acc".into()],
                park: false,
            }))
            .unwrap(),
    );
    // Ground truth: one uninterrupted 100-Vcycle run must match the
    // split 30 + 70 run bit for bit.
    let (want_fp, want_val) = direct_run("accum", 100, &[("step", 3)], "acc");
    assert_eq!(second.fingerprint, want_fp, "split run == whole run");
    assert_eq!(second.regs, vec![("acc".to_string(), want_val)]);

    // The resume consumed the session: a second resume is an error.
    match client
        .call(&Request::Resume(manticore_serve::proto::ResumeReq {
            id: 3,
            session,
            vcycles: 1,
            pokes: vec![],
            reads: vec![],
            park: false,
        }))
        .unwrap()
    {
        Reply::Error { id, message } => {
            assert_eq!(id, Some(3));
            assert!(message.contains("session"));
        }
        other => panic!("expected an error, got {other:?}"),
    }
}

#[test]
fn the_reaper_expires_idle_sessions() {
    let server = test_server(|cfg| {
        cfg.session_ttl = Duration::from_millis(100);
        cfg.reaper_period = Duration::from_millis(20);
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let r = expect_result(
        client
            .call(&Request::Submit(SubmitReq {
                id: 1,
                design: "counter".into(),
                grid: None,
                vcycles: 5,
                pokes: vec![],
                reads: vec![],
                deadline_ms: None,
                park: true,
            }))
            .unwrap(),
    );
    let session = r.session.expect("parked");
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(server.session_stats().reaped, 1);
    match client
        .call(&Request::Resume(manticore_serve::proto::ResumeReq {
            id: 2,
            session,
            vcycles: 1,
            pokes: vec![],
            reads: vec![],
            park: false,
        }))
        .unwrap()
    {
        Reply::Error { .. } => {}
        other => panic!("reaped session must not resume: {other:?}"),
    }
}
