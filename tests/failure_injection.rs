//! Failure injection: corrupting a correct schedule must trip the
//! machine's determinism checks — the guarantees that make static BSP
//! trustworthy. Each test breaks the compiler's contract a different way
//! and asserts the machine catches it.

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::{Instruction, MachineConfig, Reg};
use manticore::machine::{Machine, MachineError};
use manticore::netlist::NetlistBuilder;

fn config() -> MachineConfig {
    MachineConfig {
        grid_width: 2,
        grid_height: 2,
        hazard_latency: 4,
        ..Default::default()
    }
}

fn compiled_counter() -> (manticore::isa::Binary, MachineConfig) {
    let mut b = NetlistBuilder::new("victim");
    let r = b.reg("c", 32, 0);
    let one = b.lit(1, 32);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("c", r.q());
    let n = b.finish_build().unwrap();
    let cfg = config();
    let out = compile(
        &n,
        &CompileOptions {
            config: cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    (out.binary, cfg)
}

#[test]
fn baseline_binary_is_clean() {
    let (binary, cfg) = compiled_counter();
    let mut m = Machine::load(cfg, &binary).unwrap();
    m.run_vcycles(20).unwrap();
}

/// Compacting the schedule (dropping the compiler's NOPs) creates data
/// hazards the pipeline model must flag.
#[test]
fn squeezing_out_nops_creates_hazards() {
    let (mut binary, cfg) = compiled_counter();
    let mut squeezed = false;
    for core in &mut binary.cores {
        let non_nop: Vec<Instruction> = core
            .body
            .iter()
            .copied()
            .filter(|i| !matches!(i, Instruction::Nop))
            .collect();
        if non_nop.len() >= 2 && non_nop.len() < core.body.len() {
            squeezed = true;
            core.body = non_nop;
        }
    }
    assert!(squeezed, "expected schedules to contain NOPs");
    let mut m = Machine::load(cfg, &binary).unwrap();
    match m.run_vcycles(5) {
        Err(MachineError::Hazard { .. }) => {}
        other => panic!("expected a hazard, got {other:?}"),
    }
}

/// With strict checking off the same corruption silently computes wrong
/// values — what would happen on the real hardware. (Single-core machine
/// so the only broken contract is the pipeline hazard, not NoC timing.)
#[test]
fn permissive_mode_corrupts_silently() {
    let cfg = MachineConfig {
        grid_width: 1,
        grid_height: 1,
        hazard_latency: 4,
        ..Default::default()
    };
    let mut b = NetlistBuilder::new("victim");
    let r = b.reg("c", 32, 0);
    let one = b.lit(1, 32);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("c", r.q());
    let n = b.finish_build().unwrap();
    let out = compile(
        &n,
        &CompileOptions {
            config: cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let mut binary = out.binary;
    for core in &mut binary.cores {
        let non_nop: Vec<Instruction> = core
            .body
            .iter()
            .copied()
            .filter(|i| !matches!(i, Instruction::Nop))
            .collect();
        if non_nop.len() >= 2 && non_nop.len() < core.body.len() {
            core.body = non_nop;
        }
    }
    let mut m = Machine::load(cfg, &binary).unwrap();
    m.set_strict_hazards(false);
    // Runs "fine" — garbage in, garbage out.
    m.run_vcycles(5).unwrap();
}

/// Declaring a bigger epilogue than messages sent starves the SET slots.
/// Strict mode reports the starved slot the moment it issues; permissive
/// mode lets it NOP and catches the shortfall at the Vcycle wrap.
#[test]
fn phantom_epilogue_detected() {
    let (mut binary, cfg) = compiled_counter();
    binary.cores[0].epilogue_len += 1;

    let mut strict = Machine::load(cfg.clone(), &binary).unwrap();
    match strict.run_vcycles(2) {
        Err(MachineError::MissingScheduledMessage { .. }) => {}
        other => panic!("expected missing scheduled message, got {other:?}"),
    }

    let mut permissive = Machine::load(cfg, &binary).unwrap();
    permissive.set_strict_hazards(false);
    match permissive.run_vcycles(2) {
        Err(MachineError::MissingMessages { expected, got, .. }) => {
            assert!(expected > got);
        }
        other => panic!("expected missing messages, got {other:?}"),
    }
}

/// An unscheduled extra Send collides or overflows the target's epilogue.
#[test]
fn rogue_send_detected() {
    let (mut binary, cfg) = compiled_counter();
    // Make core (1,0) fire a Send nobody scheduled, at a random register.
    let target = manticore::isa::CoreId::new(0, 0);
    let rogue = Instruction::Send {
        target,
        rd_remote: Reg(1),
        rs: Reg(0),
    };
    if let Some(c) = binary
        .cores
        .iter_mut()
        .find(|c| c.core == manticore::isa::CoreId::new(1, 0))
    {
        c.body.insert(0, rogue);
    } else {
        binary.cores.push(manticore::isa::CoreImage {
            core: manticore::isa::CoreId::new(1, 0),
            body: vec![rogue],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![],
            init_scratch: vec![],
        });
    }
    let mut m = Machine::load(cfg, &binary).unwrap();
    match m.run_vcycles(2) {
        Err(
            MachineError::EpilogueOverflow { .. }
            | MachineError::LateMessage { .. }
            | MachineError::LinkCollision { .. },
        ) => {}
        other => panic!("expected a NoC/epilogue violation, got {other:?}"),
    }
}

/// Privileged instructions on ordinary cores are rejected at load time.
#[test]
fn privilege_violation_rejected() {
    let (mut binary, cfg) = compiled_counter();
    let intruder = Instruction::GlobalLoad {
        rd: Reg(1),
        rs_addr: [Reg(0), Reg(0), Reg(0)],
    };
    binary.cores.push(manticore::isa::CoreImage {
        core: manticore::isa::CoreId::new(1, 1),
        body: vec![intruder],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    assert!(matches!(
        Machine::load(cfg, &binary),
        Err(MachineError::Load(_))
    ));
}

/// Growing the Vcycle is harmless (more sleep); shrinking it below the
/// instruction footprint truncates execution and diverges — demonstrate
/// the grow case stays correct.
#[test]
fn longer_vcycle_still_correct() {
    let (mut binary, cfg) = compiled_counter();
    binary.vcycle_len += 64;
    let mut m = Machine::load(cfg, &binary).unwrap();
    m.run_vcycles(10).unwrap();
    // Counter still counts: find its home register via a fresh compile's
    // metadata (same compiler determinism, same placement).
    let mut b = NetlistBuilder::new("victim");
    let r = b.reg("c", 32, 0);
    let one = b.lit(1, 32);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("c", r.q());
    let n = b.finish_build().unwrap();
    let out = compile(
        &n,
        &CompileOptions {
            config: config(),
            ..Default::default()
        },
    )
    .unwrap();
    let loc = &out.metadata.reg_locations[0];
    let lo = m.read_reg(loc.words[0].0, loc.words[0].1);
    assert_eq!(lo, 10);
}

/// Corrupted byte streams are rejected by the bootloader.
#[test]
fn bootloader_rejects_corruption() {
    let (binary, cfg) = compiled_counter();
    let mut bytes = binary.to_bytes();
    bytes[3] ^= 0xff; // stomp the magic
    assert!(Machine::boot_from_bytes(cfg, &bytes).is_err());
}
