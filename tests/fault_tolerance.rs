//! The differential fault-tolerance suite: under any seeded [`FaultPlan`]
//! — worker panics mid-batch, spurious machine faults, stalls — the fleet
//! must (1) return every output in submission order with no hung barrier,
//! (2) leave every *surviving* job bit-identical to the same job in a
//! clean run (injection may kill work, never corrupt it), and (3) report
//! the exact same outcome labels run after run, at any worker count.
//!
//! The matrix: mm/bc workloads × tape/uops replay engines × the three
//! execution planes (per-job fleet, lane-batched gangs, scenario-tree
//! exploration).

use std::sync::Arc;

use manticore::fleet::{ExploreConfig, FleetSim};
use manticore::isa::MachineConfig;
use manticore::machine::ReplayEngine;
use manticore::workloads;
use manticore_fleet::{BatchPolicy, FaultPlan, Fleet, JobOutcome, JobOutput, SimJob};

const GRID: usize = 6;
const VCYCLES: u64 = 30;
const N_JOBS: usize = 8;

/// Compiles a workload to a shared program (the fleet-level entry the
/// machine-plane tests use).
fn compile(wname: &str) -> (Arc<manticore::machine::CompiledProgram>, usize) {
    let w = workloads::by_name(wname).unwrap();
    let config = MachineConfig::with_grid(GRID, GRID);
    let options = manticore::compiler::CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = manticore::compiler::compile(&w.netlist, &options).unwrap();
    let program =
        manticore::machine::CompiledProgram::compile_shared(config.clone(), &out.binary).unwrap();
    (program, config.regfile_size)
}

/// The job set for one workload: jobs alternate the two replay lowerings
/// (tape / micro-ops) so one batch covers the engine axis of the matrix.
fn job_set(program: &Arc<manticore::machine::CompiledProgram>) -> Vec<SimJob> {
    (0..N_JOBS)
        .map(|i| {
            let engine = if i % 2 == 0 {
                ReplayEngine::Tape
            } else {
                ReplayEngine::MicroOps
            };
            SimJob::new(program, VCYCLES + (i / 2) as u64)
                .replay(true)
                .replay_engine(engine)
        })
        .collect()
}

/// Counters plus the full final register file of every core — the same
/// probe `fleet_equivalence.rs` gates scheduling-independence with.
fn fingerprint(out: &JobOutput, regfile_size: usize) -> Vec<u64> {
    let mut fp = Vec::new();
    let c = out.machine().counters();
    fp.extend_from_slice(&[
        c.compute_cycles,
        c.vcycles,
        c.instructions,
        c.sends,
        c.messages_delivered,
        c.exceptions,
    ]);
    for y in 0..GRID {
        for x in 0..GRID {
            for r in 0..regfile_size {
                fp.push(out.machine().read_reg(
                    manticore::isa::CoreId::new(x as u8, y as u8),
                    manticore::isa::Reg(r as u16),
                ) as u64);
            }
        }
    }
    fp
}

#[test]
fn injected_survivors_are_bit_identical_to_the_clean_run() {
    for wname in ["mm", "bc"] {
        let (program, rf) = compile(wname);
        let clean = Fleet::new(4).run(job_set(&program));
        let clean_fps: Vec<Vec<u64>> = clean.iter().map(|o| fingerprint(o, rf)).collect();
        for o in &clean {
            assert!(!o.outcome.is_failure(), "{wname}: clean run must not fault");
        }

        for seed in [1u64, 2, 3] {
            // A seeded mixture of panics, stalls, and spurious faults,
            // plus one guaranteed worker panic mid-batch.
            let policy = BatchPolicy {
                faults: FaultPlan::seeded(seed, N_JOBS, VCYCLES, 5).panic_at(2, 3),
                ..BatchPolicy::default()
            };
            let outputs = Fleet::new(4).run_with(job_set(&program), &policy);
            assert_eq!(outputs.len(), N_JOBS, "{wname} seed {seed}: batch size");
            let mut panics = 0;
            for (i, out) in outputs.iter().enumerate() {
                assert_eq!(out.index, i, "{wname} seed {seed}: submission order broken");
                match out.outcome {
                    JobOutcome::WorkerPanic => {
                        panics += 1;
                        assert!(
                            out.result.is_err(),
                            "{wname} seed {seed}: panic must carry an error"
                        );
                    }
                    JobOutcome::Faulted => {
                        // The parked machine is still readable.
                        let _ = out.machine().counters();
                    }
                    _ => {
                        // A survivor — stalled or untouched — must be
                        // bit-identical to the clean run of the same job.
                        assert_eq!(
                            fingerprint(out, rf),
                            clean_fps[i],
                            "{wname} seed {seed}: surviving job {i} diverged from clean run"
                        );
                    }
                }
            }
            assert!(panics >= 1, "{wname} seed {seed}: the planted panic fired");

            // The outcome labels are a pure function of the plan: the
            // same plan at a different worker count reproduces them
            // exactly.
            let labels: Vec<JobOutcome> = outputs.iter().map(|o| o.outcome).collect();
            for workers in [1, 2] {
                let again = Fleet::new(workers).run_with(job_set(&program), &policy);
                let again_labels: Vec<JobOutcome> = again.iter().map(|o| o.outcome).collect();
                assert_eq!(
                    labels, again_labels,
                    "{wname} seed {seed}: outcome labels changed at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn gang_faults_park_one_lane_and_panics_kill_one_gang() {
    for wname in ["mm", "bc"] {
        let w = workloads::by_name(wname).unwrap();
        let fleet = FleetSim::compile(&w.netlist, MachineConfig::with_grid(GRID, GRID), 4)
            .unwrap_or_else(|e| panic!("{wname}: fleet compile failed: {e}"));
        let jobs = || -> Vec<manticore::fleet::FleetJob> {
            (0..N_JOBS)
                .map(|_| {
                    fleet
                        .job(VCYCLES)
                        .replay(true)
                        .replay_engine(ReplayEngine::MicroOps)
                })
                .collect()
        };

        // 8 compatible jobs at 4 lanes = two gangs: jobs 0..4 and 4..8.
        let clean = fleet.run_ganged(jobs(), 4);
        let clean_counters: Vec<_> = clean.iter().map(|r| r.sim().machine().counters()).collect();

        // Park lane 1 of the first gang; panic the worker running the
        // second gang (taking all four of its lanes down).
        let policy = BatchPolicy {
            faults: FaultPlan::none().error_at(1, 5).panic_at(5, 2),
            ..BatchPolicy::default()
        };
        let runs = fleet.run_ganged_with(jobs(), 4, &policy);
        assert_eq!(runs.len(), N_JOBS);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.index, i, "{wname}: submission order broken");
            match i {
                1 => {
                    assert_eq!(run.outcome, JobOutcome::Faulted, "{wname}: parked lane");
                    assert!(run.result.is_err());
                }
                4..=7 => {
                    assert_eq!(
                        run.outcome,
                        JobOutcome::WorkerPanic,
                        "{wname}: job {i} rode the panicked gang"
                    );
                }
                _ => {
                    // Lane-mates of the parked lane keep running and
                    // finish bit-identical to the clean gang.
                    assert_eq!(
                        run.sim().machine().counters(),
                        clean_counters[i],
                        "{wname}: surviving lane {i} diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn explore_stays_deterministic_when_children_are_killed() {
    let lanes = 4usize;
    let w = workloads::by_name("mm").unwrap();
    let fleet = FleetSim::compile(&w.netlist, MachineConfig::with_grid(GRID, GRID), 4).unwrap();
    let stimulus: Vec<String> = (0..4)
        .flat_map(|c| [format!("ad_0_{c}"), format!("ps_0_{c}")])
        .collect();
    let stimulus: Vec<&str> = stimulus.iter().map(String::as_str).collect();
    let cfg = ExploreConfig {
        lanes,
        rounds: 5,
        vcycles_per_round: 10,
        warmup_vcycles: 2,
        frontier_cap: 2,
        seed: 0,
        stimulus: Vec::new(),
    };

    let clean = fleet.explore(&stimulus, &cfg).unwrap();
    assert_eq!(clean.killed, 0, "clean exploration kills nothing");

    // Child ordinals count round by round in frontier order: round 1 is
    // 0..lanes, round 2 starts at `lanes`. Panic the gang holding child 5
    // (first gang of round 2) and plant a spurious fault on child 9.
    let policy = BatchPolicy {
        faults: FaultPlan::none()
            .panic_at(5, 2)
            .error_at(9, 4)
            .stall_at(2, 1, 1),
        ..BatchPolicy::default()
    };
    let a = fleet.explore_with(&stimulus, &cfg, &policy).unwrap();
    let b = fleet.explore_with(&stimulus, &cfg, &policy).unwrap();

    assert_eq!(
        a.killed, lanes as u64,
        "exactly the panicked gang's lanes are killed"
    );
    assert!(
        a.scenarios < clean.scenarios,
        "killed children are not counted as explored"
    );
    // The tree under injection is itself exactly reproducible: same
    // scenario count, same coverage, same kills, same faults.
    assert_eq!(a.scenarios, b.scenarios, "scenario count reproduces");
    assert_eq!(a.covered_bits, b.covered_bits, "coverage reproduces");
    assert_eq!(a.killed, b.killed, "kill count reproduces");
    assert_eq!(a.faults, b.faults, "fault count reproduces");
    assert_eq!(a.rounds_run, b.rounds_run, "round count reproduces");
}
