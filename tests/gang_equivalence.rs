//! The gang engine must be architecturally invisible: a K-lane lockstep
//! gang — one micro-op fetch per gang, lane-major machine state — yields
//! bit-identical per-lane outcomes to K solo `ManticoreSim` runs, across
//! lane counts, replay lowerings, and hazard strictness, with full
//! register-file fingerprints. A lane that faults mid-run parks with the
//! solo run's exact error and state while the surviving lanes finish
//! unchanged.
//!
//! This is the lane-level analog of `fleet_equivalence.rs` (which pins
//! job-level scheduling): lane batching may only change *how often* the
//! dispatch loop runs, never *what* any scenario computes.

use std::sync::Arc;

use manticore::bits::Bits;
use manticore::fleet::{FleetJob, FleetSim};
use manticore::isa::MachineConfig;
use manticore::machine::{Machine, ReplayEngine};
use manticore::netlist::NetlistBuilder;
use manticore::workloads;

const GRID: usize = 6;
const VCYCLES: u64 = 25;

/// Full-state fingerprint: counters plus every register of every core
/// through the flushed host view (same probe as `fleet_equivalence`).
fn fingerprint(machine: &Machine, regfile_size: usize, grid: usize) -> Vec<u64> {
    let mut fp = Vec::new();
    let c = machine.counters();
    fp.extend_from_slice(&[
        c.compute_cycles,
        c.stall_cycles,
        c.vcycles,
        c.instructions,
        c.sends,
        c.messages_delivered,
        c.exceptions,
    ]);
    for y in 0..grid {
        for x in 0..grid {
            for r in 0..regfile_size {
                fp.push(machine.read_reg(
                    manticore::isa::CoreId::new(x as u8, y as u8),
                    manticore::isa::Reg(r as u16),
                ) as u64);
            }
        }
    }
    fp
}

/// The engine-knob matrix the issue pins: both replay lowerings, strict
/// and permissive hazards.
fn variants() -> Vec<(&'static str, ReplayEngine, bool)> {
    vec![
        ("uops+strict", ReplayEngine::MicroOps, true),
        ("uops+permissive", ReplayEngine::MicroOps, false),
        ("tape+strict", ReplayEngine::Tape, true),
        ("tape+permissive", ReplayEngine::Tape, false),
    ]
}

#[test]
fn gang_lanes_bit_identical_to_solo_runs() {
    // mm exercises dense compute, bc additionally gets a distinct input
    // vector per lane (its nonce register), so lanes genuinely diverge in
    // data while staying in lockstep.
    for wname in ["mm", "bc"] {
        let w = workloads::by_name(wname).unwrap();
        let config = MachineConfig::with_grid(GRID, GRID);
        let fleet = FleetSim::compile(&w.netlist, config.clone(), 2)
            .unwrap_or_else(|e| panic!("{wname}: compile failed: {e}"));
        let output = Arc::clone(fleet.output());
        let rf = config.regfile_size;

        for lanes in [1usize, 2, 8] {
            for (vname, engine, strict) in variants() {
                let what = format!("{wname} lanes {lanes} {vname}");

                // K identically-knobbed jobs (one gang) with per-lane
                // inputs, against K solo ManticoreSims.
                let mut jobs: Vec<FleetJob> = Vec::new();
                let mut solos: Vec<manticore::ManticoreSim> = Vec::new();
                for lane in 0..lanes {
                    let mut job = fleet
                        .job(VCYCLES)
                        .replay_engine(engine)
                        .strict_hazards(strict);
                    let mut solo = manticore::ManticoreSim::from_program(
                        Arc::clone(fleet.program()),
                        output.clone(),
                    );
                    solo.set_strict_hazards(strict);
                    solo.set_replay_engine(engine);
                    if wname == "bc" {
                        let nonce = ((lane as u64) + 1) << 20;
                        job = job.with_reg("nonce0", nonce).unwrap();
                        assert!(solo.write_rtl_reg_by_name("nonce0", nonce));
                    }
                    jobs.push(job);
                    solos.push(solo);
                }

                let runs = fleet.run_ganged(jobs, lanes);
                assert_eq!(runs.len(), lanes, "{what}");
                for ((lane, run), solo) in runs.iter().enumerate().zip(solos.iter_mut()) {
                    assert_eq!(run.index, lane, "{what}: submission order");
                    let solo_result = solo.run(VCYCLES);
                    match (&run.result, &solo_result) {
                        (Ok(g), Ok(s)) => {
                            assert_eq!(g.displays, s.displays, "{what} lane {lane}: displays");
                            assert_eq!(g.finished, s.finished, "{what} lane {lane}: finish");
                            assert_eq!(g.vcycles_run, s.vcycles_run, "{what} lane {lane}: vcycles");
                        }
                        (Err(g), Err(s)) => {
                            assert_eq!(
                                format!("{g}"),
                                format!("{s}"),
                                "{what} lane {lane}: errors"
                            );
                        }
                        (g, s) => panic!("{what} lane {lane}: outcome kind: {g:?} vs {s:?}"),
                    }
                    assert_eq!(
                        fingerprint(run.sim().machine(), rf, GRID),
                        fingerprint(solo.machine(), rf, GRID),
                        "{what} lane {lane}: full-regfile fingerprint diverged"
                    );
                }
            }
        }
    }
}

/// A self-checking design whose assertion arms on a poked register: the
/// counter runs freely unless it reaches `trip`.
fn tripwire_netlist() -> manticore::netlist::Netlist {
    let mut b = NetlistBuilder::new("tripwire");
    let count = b.reg("count", 16, 0);
    let one = b.lit(1, 16);
    let next = b.add(count.q(), one);
    b.set_next(count, next);
    // `trip` holds its value; 0x7fff is far beyond any test budget.
    let trip = b.reg("trip", 16, 0x7fff);
    b.set_next(trip, trip.q());
    let hit = b.eq(count.q(), trip.q());
    let ok = b.not(hit);
    b.expect_true(ok, "tripwire hit");
    b.output("count", count.q());
    b.output("trip", trip.q());
    b.finish_build().unwrap()
}

#[test]
fn faulting_lane_is_masked_while_survivors_finish_unchanged() {
    let netlist = tripwire_netlist();
    let config = MachineConfig::with_grid(2, 2);
    let fleet = FleetSim::compile(&netlist, config.clone(), 2).unwrap();
    let rf = config.regfile_size;
    let lanes = 4usize;
    let tripped = 1usize; // lane 1 faults when the counter reaches 6

    let jobs: Vec<FleetJob> = (0..lanes)
        .map(|lane| {
            let job = fleet.job(VCYCLES);
            if lane == tripped {
                job.with_reg("trip", 6).unwrap()
            } else {
                job
            }
        })
        .collect();
    let runs = fleet.run_ganged(jobs, lanes);

    // The tripped lane reports the solo run's exact mid-run failure...
    let mut tripped_solo =
        manticore::ManticoreSim::from_program(Arc::clone(fleet.program()), fleet.output().clone());
    assert!(tripped_solo.write_rtl_reg_by_name("trip", 6));
    let solo_err = tripped_solo.run(VCYCLES).unwrap_err();
    match &runs[tripped].result {
        Err(e) => assert_eq!(format!("{e}"), format!("{solo_err}"), "tripped lane error"),
        Ok(o) => panic!("tripped lane should fault, ran {} vcycles", o.vcycles_run),
    }
    assert_eq!(
        fingerprint(runs[tripped].sim().machine(), rf, 2),
        fingerprint(tripped_solo.machine(), rf, 2),
        "tripped lane: state frozen at the solo abort point"
    );

    // ...while every surviving lane finishes bit-identical to a clean
    // solo run, as if the parked lane never existed.
    let mut clean =
        manticore::ManticoreSim::from_program(Arc::clone(fleet.program()), fleet.output().clone());
    clean.run(VCYCLES).unwrap();
    for (lane, run) in runs.iter().enumerate() {
        if lane == tripped {
            continue;
        }
        let outcome = run.result.as_ref().unwrap_or_else(|e| {
            panic!("surviving lane {lane} failed: {e}");
        });
        assert_eq!(outcome.vcycles_run, VCYCLES, "lane {lane}");
        assert_eq!(
            fingerprint(run.sim().machine(), rf, 2),
            fingerprint(clean.machine(), rf, 2),
            "surviving lane {lane} perturbed by the parked lane"
        );
    }
}

#[test]
fn wide_register_gang_pokes_mask_and_zero_extend_per_lane() {
    // The shared `rtl_reg_words` resolver behind `FleetJob::with_reg`
    // must give gangs the same wide-register semantics the solo path has:
    // out-of-width bits truncated, words past the u64 payload cleared.
    let mut b = NetlistBuilder::new("wide");
    let r40 = b.reg("r40", 40, 0);
    b.set_next(r40, r40.q());
    b.output("r40", r40.q());
    let r80 = b.reg("r80", 80, 0);
    b.set_next(r80, r80.q());
    b.output("r80", r80.q());
    let netlist = b.finish_build().unwrap();

    let fleet = FleetSim::compile(&netlist, MachineConfig::with_grid(2, 2), 2).unwrap();
    let lanes = 3usize;
    let jobs: Vec<FleetJob> = (0..lanes as u64)
        .map(|lane| {
            fleet
                .job(5)
                // 41 significant bits: bit 40 must be truncated away.
                .with_reg("r40", 0x1FF_FFFF_FF00 | lane)
                .unwrap()
                // Full u64 payload: r80's fifth word must stay zero.
                .with_reg("r80", u64::MAX - lane)
                .unwrap()
        })
        .collect();
    for (lane, run) in fleet.run_ganged(jobs, lanes).into_iter().enumerate() {
        run.result.as_ref().unwrap();
        let lane = lane as u64;
        assert_eq!(
            run.sim().read_rtl_reg_by_name("r40").unwrap().to_u64(),
            0xFF_FFFF_FF00 | lane,
            "lane {lane}: out-of-width bits must be truncated"
        );
        let r80 = run.sim().read_rtl_reg_by_name("r80").unwrap();
        assert_eq!(
            r80.to_u128(),
            (u64::MAX - lane) as u128,
            "lane {lane}: words past the u64 payload must be zero"
        );
        assert_eq!(r80, Bits::from_u128(u128::from(u64::MAX - lane), 80));
    }
}
