//! Compile determinism: the pass-manager pipeline must be a pure function
//! of (netlist, options) — byte-identical binaries and identical
//! deterministic report metadata across repeated runs *and* across worker
//! thread counts. This is the contract that lets the parallel compiler
//! replace the serial one everywhere: 1 thread runs the reference pass
//! implementations, >1 runs the parallel ones, and this suite holds them
//! bit-for-bit equal on every workload.

use manticore::compiler::{compile, CompileOptions, PartitionStrategy};
use manticore::isa::MachineConfig;
use manticore::workloads;

fn options(grid: usize, threads: usize, strategy: PartitionStrategy) -> CompileOptions {
    CompileOptions {
        config: MachineConfig::with_grid(grid, grid),
        partition: strategy,
        compile_threads: threads,
        ..Default::default()
    }
}

/// All workloads this suite sweeps: the nine evaluation benchmarks plus a
/// small instance of the `soc` compile-stress torus.
fn suite() -> Vec<(String, manticore::netlist::Netlist)> {
    let mut v: Vec<(String, manticore::netlist::Netlist)> = workloads::all()
        .into_iter()
        .map(|w| (w.name.to_string(), w.netlist))
        .collect();
    v.push(("soc-4x3".into(), workloads::soc_sized(4, 3, 2000)));
    v
}

#[test]
fn same_netlist_twice_is_byte_identical() {
    // Two compiles with identical options must produce identical bytes and
    // identical deterministic metadata — catches hidden iteration-order
    // nondeterminism (e.g. hash-map ordering leaking into emission).
    for (name, netlist) in suite() {
        for threads in [1, 4] {
            let opts = options(6, threads, PartitionStrategy::Balanced);
            let a = compile(&netlist, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            let b = compile(&netlist, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                a.binary.to_bytes(),
                b.binary.to_bytes(),
                "{name}: binary differs between two identical compiles (threads={threads})"
            );
            assert_eq!(
                a.report.deterministic_fingerprint(),
                b.report.deterministic_fingerprint(),
                "{name}: report metadata differs between two identical compiles (threads={threads})"
            );
        }
    }
}

#[test]
fn parallel_compile_is_bit_identical_to_serial() {
    // The headline guarantee: at any worker count the parallel pipeline
    // emits the exact bytes of the serial reference pipeline.
    for (name, netlist) in suite() {
        let serial = compile(&netlist, &options(6, 1, PartitionStrategy::Balanced))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let serial_bytes = serial.binary.to_bytes();
        let serial_fp = serial.report.deterministic_fingerprint();
        for threads in [2, 4] {
            let par = compile(&netlist, &options(6, threads, PartitionStrategy::Balanced))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                par.binary.to_bytes(),
                serial_bytes,
                "{name}: parallel compile ({threads} threads) diverged from serial"
            );
            assert_eq!(
                par.report.deterministic_fingerprint(),
                serial_fp,
                "{name}: parallel report metadata ({threads} threads) diverged from serial"
            );
            assert_eq!(par.report.compile_threads, threads);
        }
    }
}

#[test]
fn lpt_strategy_is_deterministic_across_threads_too() {
    // The LPT merge has a single implementation shared by both pipelines;
    // the rest of the passes still switch to their parallel forms.
    let netlist = workloads::by_name("blur").unwrap().netlist;
    let serial = compile(&netlist, &options(6, 1, PartitionStrategy::Lpt)).unwrap();
    let par = compile(&netlist, &options(6, 4, PartitionStrategy::Lpt)).unwrap();
    assert_eq!(serial.binary.to_bytes(), par.binary.to_bytes());
    assert_eq!(
        serial.report.deterministic_fingerprint(),
        par.report.deterministic_fingerprint()
    );
}

#[test]
fn pass_reports_are_complete_at_every_thread_count() {
    // Whatever the thread count, the report must carry all seven passes in
    // pipeline order with non-zero IR sizes — the bench gate keys on these.
    let netlist = workloads::by_name("jpeg").unwrap().netlist;
    for threads in [1, 2, 4] {
        let out = compile(&netlist, &options(6, threads, PartitionStrategy::Balanced)).unwrap();
        let names: Vec<&str> = out.report.passes.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "netlist-opt",
                "lower",
                "lir-opt",
                "partition",
                "custom-functions",
                "schedule",
                "regalloc-emit"
            ]
        );
        assert!(out.report.passes.iter().all(|p| p.ir_size > 0));
        if threads > 1 {
            assert!(
                out.report.passes.iter().any(|p| p.threads == threads),
                "no pass recorded running with {threads} workers"
            );
        } else {
            assert!(out.report.passes.iter().all(|p| p.threads == 1));
        }
    }
}
