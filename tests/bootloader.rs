//! Bootloader path: serialize every workload's binary to the byte format
//! and boot machines from bytes — the full compiler → DRAM image →
//! hardware bootloader flow of Appendix A.3.

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::{Binary, MachineConfig};
use manticore::machine::Machine;
use manticore::workloads;

#[test]
fn all_workload_binaries_roundtrip() {
    for w in workloads::all() {
        let config = MachineConfig::with_grid(5, 5);
        let options = CompileOptions {
            config,
            ..Default::default()
        };
        let out = compile(&w.netlist, &options)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        let bytes = out.binary.to_bytes();
        let restored = Binary::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{}: deserialize failed: {e}", w.name));
        assert_eq!(restored, out.binary, "{}: roundtrip mismatch", w.name);
    }
}

#[test]
fn booted_machine_equals_directly_loaded_machine() {
    let w = workloads::by_name("blur").unwrap();
    let config = MachineConfig::with_grid(4, 4);
    let options = CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options).unwrap();

    let mut direct = Machine::load(config.clone(), &out.binary).unwrap();
    let mut booted = Machine::boot_from_bytes(config, &out.binary.to_bytes()).unwrap();

    direct.run_vcycles(25).unwrap();
    booted.run_vcycles(25).unwrap();
    for loc in &out.metadata.reg_locations {
        for &(core, reg) in &loc.words {
            assert_eq!(
                direct.read_reg(core, reg),
                booted.read_reg(core, reg),
                "state diverged between boot paths"
            );
        }
    }
    assert_eq!(
        direct.counters().instructions,
        booted.counters().instructions
    );
}

#[test]
fn binary_size_is_reasonable() {
    // The serialized image should be linear in the instruction count, not
    // accidentally quadratic.
    let w = workloads::by_name("bc").unwrap();
    let options = CompileOptions {
        config: MachineConfig::with_grid(4, 4),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options).unwrap();
    let bytes = out.binary.to_bytes();
    let instrs = out.binary.total_instructions();
    assert!(
        bytes.len() < 64 * instrs + 65536,
        "binary is {} bytes for {} instructions",
        bytes.len(),
        instrs
    );
}
