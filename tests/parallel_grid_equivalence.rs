//! The sharded BSP grid engine and both validate-once / replay-many
//! lowerings (pre-decoded tape, fused micro-op stream) must be
//! bit-identical to the plain serial grid engine on every real workload:
//! same final register state, same displays, same `PerfCounters` — at 1,
//! 2, and 4 shards, with replay off, on the tape, and on micro-ops, under
//! strict and permissive hazard checking.
//!
//! This is the machine-side analog of `backend_agreement.rs` (which covers
//! the Verilator-analog tape executors): together they pin down that every
//! fast execution path in the repository is an exact, not approximate,
//! speedup.

use manticore::bits::Bits;
use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::{ExecMode, Machine, ReplayEngine};
use manticore::workloads;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const GRID: usize = 6;
const VCYCLES: u64 = 40;

/// The replay column of the engine sweep: off, tape, or micro-ops.
#[derive(Clone, Copy, PartialEq)]
enum Replay {
    Off,
    Tape,
    MicroOps,
}

impl Replay {
    const ALL: [Replay; 3] = [Replay::Off, Replay::Tape, Replay::MicroOps];

    fn label(self) -> &'static str {
        match self {
            Replay::Off => "",
            Replay::Tape => "+replay",
            Replay::MicroOps => "+uops",
        }
    }

    fn apply(self, m: &mut Machine) {
        match self {
            Replay::Off => m.set_replay(false),
            Replay::Tape => m.set_replay_engine(ReplayEngine::Tape),
            Replay::MicroOps => m.set_replay_engine(ReplayEngine::MicroOps),
        }
    }
}

/// Reads every RTL register back out of the machine's register files using
/// the compiler's placement metadata.
fn rtl_regs(machine: &Machine, out: &manticore::compiler::CompileOutput) -> Vec<Bits> {
    out.optimized
        .registers()
        .iter()
        .enumerate()
        .map(|(ri, reg)| {
            let loc = &out.metadata.reg_locations[ri];
            let words: Vec<u16> = loc
                .words
                .iter()
                .map(|&(core, mreg)| machine.read_reg(core, mreg))
                .collect();
            Bits::from_words16(&words, reg.width)
        })
        .collect()
}

/// Sweeps every engine combination against the plain serial interpreter
/// on every workload, under the given hazard mode.
fn sweep_all_workloads(strict: bool) {
    for w in workloads::all() {
        let config = MachineConfig::with_grid(GRID, GRID);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let out = compile(&w.netlist, &options)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));

        // Reference: the plain position-by-position serial interpreter.
        let mut serial = Machine::load(config.clone(), &out.binary)
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", w.name));
        serial.set_strict_hazards(strict);
        serial.set_replay(false);
        let s_run = serial
            .run_vcycles(VCYCLES)
            .unwrap_or_else(|e| panic!("{}: serial run failed: {e}", w.name));
        let s_regs = rtl_regs(&serial, &out);

        // Sweep every fast path against it: both serial replay lowerings,
        // and the sharded BSP engine with every replay column.
        let mut variants: Vec<(String, ExecMode, Replay)> = vec![
            ("serial+replay".into(), ExecMode::Serial, Replay::Tape),
            ("serial+uops".into(), ExecMode::Serial, Replay::MicroOps),
        ];
        for shards in SHARD_COUNTS {
            for replay in Replay::ALL {
                variants.push((
                    format!("{shards} shards{}", replay.label()),
                    ExecMode::Parallel { shards },
                    replay,
                ));
            }
        }
        for (what, mode, replay) in variants {
            let what = format!("{what} ({})", if strict { "strict" } else { "permissive" });
            let mut par = Machine::load(config.clone(), &out.binary).unwrap();
            par.set_strict_hazards(strict);
            par.set_exec_mode(mode);
            replay.apply(&mut par);
            let p_run = par
                .run_vcycles(VCYCLES)
                .unwrap_or_else(|e| panic!("{}: {what} run failed: {e}", w.name));

            assert_eq!(
                s_run.displays, p_run.displays,
                "{}: displays diverged at {what}",
                w.name
            );
            assert_eq!(
                s_run.finished, p_run.finished,
                "{}: finish flag diverged at {what}",
                w.name
            );
            assert_eq!(
                s_run.vcycles_run, p_run.vcycles_run,
                "{}: vcycle count diverged at {what}",
                w.name
            );
            assert_eq!(
                serial.counters(),
                par.counters(),
                "{}: PerfCounters diverged at {what}",
                w.name
            );
            assert_eq!(
                serial.cache_stats(),
                par.cache_stats(),
                "{}: cache stats diverged at {what}",
                w.name
            );
            let p_regs = rtl_regs(&par, &out);
            for (ri, reg) in out.optimized.registers().iter().enumerate() {
                assert_eq!(
                    s_regs[ri], p_regs[ri],
                    "{}: register `{}` diverged at {what}",
                    w.name, reg.name
                );
            }
        }
    }
}

#[test]
fn parallel_grid_is_bit_identical_on_all_workloads() {
    sweep_all_workloads(true);
}

#[test]
fn parallel_grid_is_bit_identical_on_all_workloads_permissive() {
    // Permissive mode keeps the micro-op engine on the pipeline-ring
    // executor (stale-read timing is observable), so this sweep pins the
    // ringed lowering too.
    sweep_all_workloads(false);
}

#[test]
fn replay_mode_switches_are_seamless() {
    // Replay can be toggled, lowerings swapped, and engines switched
    // between `run_vcycles` calls without perturbing a single
    // architectural bit: the machine state at every Vcycle boundary is
    // engine-independent.
    let w = workloads::by_name("mm").unwrap();
    let config = MachineConfig::with_grid(GRID, GRID);
    let options = CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options).unwrap();

    let mut reference = Machine::load(config.clone(), &out.binary).unwrap();
    reference.set_replay(false);
    reference.run_vcycles(36).unwrap();

    let mut mixed = Machine::load(config.clone(), &out.binary).unwrap();
    mixed.run_vcycles(6).unwrap(); // validation + micro-op replay (default)
    mixed.set_replay_engine(ReplayEngine::Tape);
    mixed.run_vcycles(6).unwrap(); // tape replay
    mixed.set_replay(false);
    mixed.run_vcycles(6).unwrap(); // full interpreter
    mixed.set_exec_mode(ExecMode::Parallel { shards: 3 });
    mixed.set_replay(true);
    mixed.set_replay_engine(ReplayEngine::MicroOps);
    mixed.run_vcycles(6).unwrap(); // parallel micro-op replay
    mixed.set_replay_engine(ReplayEngine::Tape);
    mixed.run_vcycles(6).unwrap(); // parallel tape replay
    mixed.set_exec_mode(ExecMode::Serial);
    mixed.set_replay_engine(ReplayEngine::MicroOps);
    mixed.run_vcycles(6).unwrap(); // serial micro-op replay
    assert_eq!(reference.counters(), mixed.counters());
    let a = rtl_regs(&reference, &out);
    let b = rtl_regs(&mixed, &out);
    for (ri, reg) in out.optimized.registers().iter().enumerate() {
        assert_eq!(a[ri], b[ri], "register `{}` diverged", reg.name);
    }
}

#[test]
fn parallel_grid_counters_independent_of_shard_count() {
    // The deterministic-aggregation guarantee of `PerfCounters::merge_from`,
    // observed end-to-end: whatever the shard count, the counter totals are
    // the same numbers.
    let w = workloads::by_name("mm").unwrap();
    let config = MachineConfig::with_grid(GRID, GRID);
    let options = CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options).unwrap();

    let mut reference = None;
    for shards in [1, 2, 3, 4, 5, 7] {
        let mut m = Machine::load(config.clone(), &out.binary).unwrap();
        m.set_exec_mode(ExecMode::Parallel { shards });
        m.run_vcycles(25).unwrap();
        let c = m.counters();
        assert!(c.instructions > 0 && c.sends > 0, "workload must be busy");
        match &reference {
            None => reference = Some(c),
            Some(r) => assert_eq!(*r, c, "counters changed between shard counts ({shards})"),
        }
    }
}
