//! The central integration test: every one of the paper's nine workloads
//! compiles for a Manticore grid and the machine model reproduces the
//! reference evaluator's architectural state cycle for cycle — displays,
//! finishes, and every register.

use manticore::bits::Bits;
use manticore::compiler::{compile, CompileOptions, PartitionStrategy};
use manticore::isa::MachineConfig;
use manticore::machine::Machine;
use manticore::netlist::eval::Evaluator;
use manticore::workloads;

fn grid_config(g: usize) -> MachineConfig {
    MachineConfig::with_grid(g, g)
}

/// Compiles `netlist` for `config` and checks machine-vs-evaluator
/// equivalence for `cycles` RTL cycles.
fn check_equivalence(
    name: &str,
    netlist: &manticore::netlist::Netlist,
    config: MachineConfig,
    cycles: u64,
    strategy: PartitionStrategy,
) {
    check_equivalence_threaded(name, netlist, config, cycles, strategy, 1);
}

/// Like [`check_equivalence`] but compiling with an explicit worker-thread
/// count, so the suite also covers the parallel pass pipeline end to end.
fn check_equivalence_threaded(
    name: &str,
    netlist: &manticore::netlist::Netlist,
    config: MachineConfig,
    cycles: u64,
    strategy: PartitionStrategy,
    compile_threads: usize,
) {
    let options = CompileOptions {
        config: config.clone(),
        partition: strategy,
        compile_threads,
        ..Default::default()
    };
    let out = compile(netlist, &options).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let mut eval = Evaluator::new(&out.optimized);
    let mut machine =
        Machine::load(config, &out.binary).unwrap_or_else(|e| panic!("{name}: load failed: {e}"));

    for cycle in 0..cycles {
        let ev = eval.step();
        let mv = machine
            .run_vcycles(1)
            .unwrap_or_else(|e| panic!("{name}: machine failed at cycle {cycle}: {e}"));
        assert_eq!(
            ev.displays, mv.displays,
            "{name}: displays at cycle {cycle}"
        );
        assert_eq!(ev.finished, mv.finished, "{name}: finish at cycle {cycle}");
        assert!(
            ev.failed_expects.is_empty(),
            "{name}: assertion failed in reference at {cycle}"
        );
        for (ri, reg) in out.optimized.registers().iter().enumerate() {
            let expect = eval.reg_value(ri);
            let loc = &out.metadata.reg_locations[ri];
            let words: Vec<u16> = loc
                .words
                .iter()
                .map(|&(core, mreg)| machine.read_reg(core, mreg))
                .collect();
            let got = Bits::from_words16(&words, reg.width);
            assert_eq!(
                &got, expect,
                "{name}: register `{}` diverged at cycle {cycle}",
                reg.name
            );
        }
        if ev.finished {
            break;
        }
    }
}

macro_rules! equivalence_test {
    ($test:ident, $workload:literal, $grid:expr, $cycles:expr) => {
        #[test]
        fn $test() {
            let w = workloads::by_name($workload).unwrap();
            check_equivalence(
                $workload,
                &w.netlist,
                grid_config($grid),
                $cycles,
                PartitionStrategy::Balanced,
            );
        }
    };
}

equivalence_test!(vta_matches, "vta", 6, 8);
equivalence_test!(mc_matches, "mc", 6, 8);
equivalence_test!(noc_matches, "noc", 6, 8);
equivalence_test!(mm_matches, "mm", 6, 8);
equivalence_test!(rv32r_matches, "rv32r", 6, 8);
equivalence_test!(cgra_matches, "cgra", 6, 8);
equivalence_test!(bc_matches, "bc", 6, 8);
equivalence_test!(blur_matches, "blur", 6, 8);
equivalence_test!(jpeg_matches, "jpeg", 6, 8);

#[test]
fn soc_matches_with_serial_compile() {
    // The SoC torus (CPU tiles + scratchpad tiles) — small enough here for
    // lockstep comparison, full-size in the compile benchmarks.
    let netlist = workloads::soc_sized(4, 4, 2000);
    check_equivalence(
        "soc",
        &netlist,
        grid_config(6),
        8,
        PartitionStrategy::Balanced,
    );
}

#[test]
fn soc_matches_with_parallel_compile() {
    // Same SoC, compiled by the parallel pass pipeline: the binary must be
    // just as correct (and, per the determinism suite, bit-identical).
    let netlist = workloads::soc_sized(4, 4, 2000);
    check_equivalence_threaded(
        "soc-par",
        &netlist,
        grid_config(6),
        8,
        PartitionStrategy::Balanced,
        4,
    );
}

#[test]
fn lpt_strategy_matches_on_a_workload() {
    let w = workloads::by_name("blur").unwrap();
    check_equivalence(
        "blur-lpt",
        &w.netlist,
        grid_config(6),
        6,
        PartitionStrategy::Lpt,
    );
}

#[test]
fn workloads_run_longer_on_machine_only() {
    // Beyond lockstep comparison: the machine alone must sustain longer
    // runs with assertions green (jpeg exercises the serial chain).
    let w = workloads::by_name("jpeg").unwrap();
    let config = grid_config(4);
    let options = CompileOptions {
        config: config.clone(),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options).unwrap();
    let mut machine = Machine::load(config, &out.binary).unwrap();
    let outcome = machine.run_vcycles(300).unwrap();
    assert_eq!(outcome.vcycles_run, 300);
    assert!(machine.counters().instructions > 0);
}

#[test]
fn full_grid_compile_reports_sane_vcpl() {
    // Compile everything at the paper's 15×15 and sanity-check the
    // simulation rates land in a plausible band (tens of kHz to tens of
    // MHz at 475 MHz — the machine is small compared to the paper's).
    for w in workloads::all() {
        let config = MachineConfig::default();
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let out = compile(&w.netlist, &options)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        let khz = config.simulation_rate_khz(out.report.vcpl);
        assert!(
            khz > 10.0 && khz < 500_000.0,
            "{}: implausible rate {khz} kHz (VCPL {})",
            w.name,
            out.report.vcpl
        );
    }
}
