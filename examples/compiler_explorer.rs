//! Compiler explorer: inspect what the static-BSP compiler actually emits —
//! the per-core assembly (the paper's Listing-3 view), the pass timings,
//! the partition/schedule statistics — and dump a VCD waveform of the
//! design for a waveform viewer.
//!
//! Run with: `cargo run --example compiler_explorer [workload]`

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::{disassemble, MachineConfig};
use manticore::netlist::{eval::Evaluator, vcd::VcdTracer};
use manticore::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jpeg".into());
    let w = workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"));

    // Compile for a small grid so the listing stays readable.
    let options = CompileOptions {
        config: MachineConfig::with_grid(3, 3),
        ..Default::default()
    };
    let out = compile(&w.netlist, &options)?;

    println!("== compilation report for `{name}` ==");
    println!(
        "  {:<18} {:>8}  {:>10}  {:>7}",
        "pass", "ms", "ir size", "threads"
    );
    for p in &out.report.passes {
        println!(
            "  {:<18} {:>8.2}  {:>10}  {:>7}",
            p.name,
            p.duration.as_secs_f64() * 1e3,
            p.ir_size,
            p.threads
        );
    }
    if let Some(dom) = out.report.dominant_pass() {
        println!(
            "  dominant: {} ({:.2} ms of {:.2} ms total)",
            dom.name,
            dom.duration.as_secs_f64() * 1e3,
            out.report.total_time().as_secs_f64() * 1e3
        );
    }
    println!(
        "  VCPL {} | processes {} | cores {} | sends {} | custom {}",
        out.report.vcpl,
        out.report.processes,
        out.report.cores_used,
        out.report.total_sends,
        out.report.total_custom
    );

    println!("\n== disassembly (first 60 lines) ==");
    for line in disassemble(&out.binary).lines().take(60) {
        println!("{line}");
    }

    // Waveform dump of the first 64 cycles on the reference evaluator.
    let mut sim = Evaluator::new(&out.optimized);
    let path = format!("{name}.vcd");
    let file = std::fs::File::create(&path)?;
    let mut tracer = VcdTracer::new(&out.optimized, std::io::BufWriter::new(file))?;
    for _ in 0..64 {
        sim.step();
        tracer.sample(&sim)?;
    }
    tracer.finish()?;
    println!("\nwrote 64-cycle waveform to {path} (open with GTKWave/Surfer)");
    Ok(())
}
