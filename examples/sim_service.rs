//! Simulation as a service: boot the job server in-process, talk to it
//! over a real loopback socket, and exercise the three request shapes —
//! fire-and-forget submissions, a park/resume session, and a stats
//! probe — before a clean shutdown.
//!
//! Run with: `cargo run --example sim_service`
//!
//! In production the server runs standalone (`manticore-served`), and
//! clients connect from other processes; the wire protocol is the same
//! 4-byte length-prefixed JSON either way (see SERVING.md).

use manticore_serve::client::Client;
use manticore_serve::proto::{Reply, Request, ResumeReq, SubmitReq};
use manticore_serve::server::{Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot a server on an ephemeral loopback port. Two fleet workers
    //    and four gang lanes is plenty for a demo; `manticore-served`
    //    exposes the same knobs as CLI flags.
    let mut server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            lanes: 4,
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", server.local_addr());

    // 2. Submit a batch of jobs on one connection. Replies stream back
    //    as jobs finish; the `id` ties each reply to its submission.
    let mut client = Client::connect(server.local_addr())?;
    for id in 0..4u64 {
        client.send(&Request::Submit(SubmitReq {
            id,
            design: "counter".into(),
            grid: None,
            vcycles: 100,
            pokes: vec![("count".into(), id * 1_000)],
            reads: vec!["count".into()],
            deadline_ms: None,
            park: false,
        }))?;
    }
    for _ in 0..4 {
        match client.recv()?.expect("server open") {
            Reply::Result(r) => {
                let (name, value) = &r.regs[0];
                println!(
                    "job {}: outcome={} after {} Vcycles, {name}={value}, state {}",
                    r.id, r.outcome, r.vcycles_run, r.fingerprint
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    // 3. Park a machine server-side mid-run, then resume it. The split
    //    run is bit-identical to one uninterrupted run — the session
    //    holds the booted machine, not a snapshot.
    let parked = match client.call(&Request::Submit(SubmitReq {
        id: 10,
        design: "accum".into(),
        grid: None,
        vcycles: 30,
        pokes: vec![("step".into(), 3)],
        reads: vec!["acc".into()],
        deadline_ms: None,
        park: true,
    }))? {
        Reply::Result(r) => r,
        other => panic!("unexpected reply: {other:?}"),
    };
    let session = parked.session.expect("parked jobs return a session id");
    println!(
        "parked after 30 Vcycles as {session}, acc = {}",
        parked.regs[0].1
    );

    match client.call(&Request::Resume(ResumeReq {
        id: 11,
        session,
        vcycles: 70,
        pokes: vec![],
        reads: vec!["acc".into()],
        park: false,
    }))? {
        Reply::Result(r) => println!(
            "resumed +70 Vcycles: acc = {}, state {}",
            r.regs[0].1, r.fingerprint
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    // 4. Ask the server for its counters: cache hits/misses, queue
    //    depth, sessions, jobs by outcome.
    let stats = client.stats()?;
    println!("stats: {}", stats.render());

    drop(client);
    server.shutdown();
    println!("server drained and stopped");
    Ok(())
}
