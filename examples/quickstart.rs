//! Quickstart: describe a circuit, compile it for Manticore, simulate it,
//! and read the state back.
//!
//! Run with: `cargo run --example quickstart`

use manticore::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the design — a 32-bit Fibonacci generator with a
    //    self-checking driver (the builder DSL plays the role of the
    //    paper's Verilog frontend).
    let mut b = NetlistBuilder::new("fibonacci");
    let a = b.reg("a", 32, 0);
    let c = b.reg("c", 32, 1);
    let sum = b.add(a.q(), c.q());
    b.set_next(a, c.q());
    b.set_next(c, sum);

    // $display each value; $finish once it passes one million.
    let t = b.lit(1, 1);
    b.display(t, "fib = {}", &[a.q()]);
    let limit = b.lit(1_000_000, 32);
    let done = b.ult(limit, a.q());
    b.finish(done);
    let netlist = b.finish_build()?;

    // 2. Compile for a 2×2 Manticore grid and boot the machine model.
    let config = MachineConfig::with_grid(2, 2);
    let mut sim = ManticoreSim::compile(&netlist, config)?;

    let report = &sim.compile_output().report;
    println!(
        "compiled: VCPL = {} machine cycles per RTL cycle",
        report.vcpl
    );
    println!(
        "predicted rate at 475 MHz: {:.1} kHz",
        sim.simulation_rate_khz()
    );

    // 3. Run. Displays are produced by the host servicing EXPECT
    //    exceptions, exactly as in the paper's runtime.
    let outcome = sim.run(100)?;
    for line in outcome.displays.iter().take(10) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", outcome.displays.len());
    println!(
        "finished = {}, RTL cycles simulated = {}",
        outcome.finished, outcome.vcycles_run
    );

    // 4. Read architectural state straight out of the register files.
    let a_val = sim.read_rtl_reg_by_name("a").expect("register exists");
    println!("final fib value a = {}", a_val.to_u64());
    assert!(a_val.to_u64() > 1_000_000);
    Ok(())
}
