//! Design sweep: compile one workload across grid sizes and both
//! *predict* (compiler VCPL, as Fig. 7 does) and *measure* (machine
//! model on the fleet engine, gang-batched) its scaling.
//!
//! Each grid size needs its own compilation — the schedule is a function
//! of the grid — but every simulation of the sweep runs as one batch on
//! the machine-level fleet, with `SCENARIOS` measurement replicas per
//! point. The batch goes through `Fleet::run_ganged`: replicas of one
//! point share a program, so each point's replicas execute as one
//! lockstep gang (one micro-op fetch per gang), while different points —
//! different programs — stay separate units that the work-stealing pool
//! runs concurrently. Results come back in submission order regardless
//! of which worker finished first, and the replicas double as a
//! determinism check: every lane of a point must agree bit for bit.
//!
//! Run with: `cargo run --release --example design_sweep [workload]`
//!
//! **Scenario-tree mode** (`cargo run --release --example design_sweep
//! [workload] tree`): sweeps the same grid sizes, but instead of fixed
//! measurement replicas each point runs a coverage-guided exploration —
//! checkpoint, fork into gangs of fuzzed children, keep the
//! coverage-raisers — and reports forked scenarios/sec and toggled bits
//! per grid, i.e. how fast each hardware point turns one simulation into
//! a tree of divergent ones.

use std::sync::Arc;
use std::time::Instant;

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::CompiledProgram;
use manticore::workloads;
use manticore_fleet::{Fleet, SimJob};

const VCYCLES: u64 = 300;
/// Measurement replicas per sweep point — one gang per point.
const SCENARIOS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cgra".into());
    let w = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (try vta, mc, noc, mm, ...)"));

    println!("workload: {} ({} nets)", w.name, w.netlist.nets().len());

    if std::env::args().nth(2).as_deref() == Some("tree") {
        return tree_sweep(&w);
    }

    // --- Compile each grid size (the per-point part) -------------------
    struct Point {
        grid: usize,
        vcpl: u64,
        sends: u64,
        rate_khz: f64,
        program: Arc<CompiledProgram>,
    }
    let mut points: Vec<Point> = Vec::new();
    for grid in [1usize, 2, 3, 5, 7, 9, 12, 15] {
        let config = MachineConfig::with_grid(grid, grid);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        match compile(&w.netlist, &options) {
            Ok(out) => {
                let program = CompiledProgram::compile_shared(config.clone(), &out.binary)?;
                points.push(Point {
                    grid,
                    vcpl: out.report.vcpl,
                    sends: out.report.total_sends,
                    rate_khz: config.simulation_rate_khz(out.report.vcpl),
                    program,
                });
            }
            Err(e) => {
                // Small grids may not fit the design (instruction memory).
                println!("{:>6} cores: does not fit: {e}", grid * grid);
            }
        }
    }

    // --- Run every point as one gang-batched fleet batch ---------------
    let fleet = Fleet::new(4);
    let jobs: Vec<SimJob> = points
        .iter()
        .flat_map(|p| (0..SCENARIOS).map(|_| SimJob::new(&p.program, VCYCLES)))
        .collect();
    let t = Instant::now();
    let outputs = fleet.run_ganged(jobs, SCENARIOS);
    let batch_secs = t.elapsed().as_secs_f64();

    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>8} {:>14}",
        "cores", "VCPL", "rate (kHz)", "speedup", "sends", "instrs/vcycle"
    );
    let base_vcpl = points.first().map(|p| p.vcpl);
    for (pi, p) in points.iter().enumerate() {
        let gang = &outputs[pi * SCENARIOS..(pi + 1) * SCENARIOS];
        let first = gang[0].result.as_ref().expect("sweep point runs clean");
        assert_eq!(first.vcycles_run, VCYCLES);
        let counters = gang[0].machine().counters();
        // The replicas are identical scenarios: every lane of the gang
        // must land on the same counters (a live determinism check).
        for out in &gang[1..] {
            assert_eq!(out.machine().counters(), counters, "gang lanes diverged");
        }
        println!(
            "{:>6} {:>8} {:>12.1} {:>9.2}x {:>8} {:>14.1}",
            p.grid * p.grid,
            p.vcpl,
            p.rate_khz,
            base_vcpl.unwrap() as f64 / p.vcpl as f64,
            p.sends,
            counters.instructions as f64 / counters.vcycles as f64,
        );
    }
    println!(
        "\nmeasured {} sweep points x {SCENARIOS} gang lanes x {VCYCLES} vcycles \
         in {batch_secs:.3}s (one fleet batch, {} workers)",
        points.len(),
        fleet.workers()
    );
    Ok(())
}

/// Scenario-tree mode: per fitting grid point, a coverage-guided
/// exploration instead of fixed replicas.
fn tree_sweep(w: &workloads::Workload) -> Result<(), Box<dyn std::error::Error>> {
    use manticore::fleet::{ExploreConfig, FleetSim};

    let cfg = ExploreConfig {
        lanes: 8,
        rounds: 12,
        vcycles_per_round: 20,
        warmup_vcycles: 2,
        frontier_cap: 4,
        seed: 0,
        stimulus: Vec::new(),
    };
    println!(
        "{:>6} {:>10} {:>12} {:>13} {:>9} {:>7}",
        "cores", "scenarios", "scen/s", "covered bits", "displays", "faults"
    );
    for grid in [3usize, 5, 7, 9] {
        let fleet = match FleetSim::compile(&w.netlist, MachineConfig::with_grid(grid, grid), 4) {
            Ok(fleet) => fleet,
            Err(e) => {
                println!("{:>6} does not fit: {e}", grid * grid);
                continue;
            }
        };
        // Fuzz the design's first few architectural registers — a
        // workload-agnostic stimulus that still diverges the datapath.
        let names: Vec<&str> = fleet
            .output()
            .optimized
            .registers()
            .iter()
            .take(4)
            .map(|r| r.name.as_str())
            .collect();
        let t = Instant::now();
        let report = fleet.explore(&names, &cfg)?;
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>10} {:>12.0} {:>13} {:>9} {:>7}",
            grid * grid,
            report.scenarios,
            report.scenarios as f64 / secs,
            report.covered_bits,
            report.displays,
            report.asserts + report.faults,
        );
    }
    Ok(())
}
