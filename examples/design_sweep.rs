//! Design sweep: compile one workload across grid sizes and both
//! *predict* (compiler VCPL, as Fig. 7 does) and *measure* (machine
//! model on the fleet engine) its scaling.
//!
//! Each grid size needs its own compilation — the schedule is a function
//! of the grid — but every simulation of the sweep runs as one batch on
//! the machine-level fleet: the jobs carry *different* compiled programs,
//! the work-stealing pool executes them concurrently, and the results
//! come back in grid order regardless of which worker finished first.
//! The same sweep run point-by-point re-pays one simulation's wall time
//! per point; the batch pays roughly the slowest point.
//!
//! Run with: `cargo run --release --example design_sweep [workload]`

use std::sync::Arc;
use std::time::Instant;

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::machine::CompiledProgram;
use manticore::workloads;
use manticore_fleet::{Fleet, SimJob};

const VCYCLES: u64 = 300;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cgra".into());
    let w = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (try vta, mc, noc, mm, ...)"));

    println!("workload: {} ({} nets)", w.name, w.netlist.nets().len());

    // --- Compile each grid size (the per-point part) -------------------
    struct Point {
        grid: usize,
        vcpl: u64,
        sends: u64,
        rate_khz: f64,
        program: Arc<CompiledProgram>,
    }
    let mut points: Vec<Point> = Vec::new();
    for grid in [1usize, 2, 3, 5, 7, 9, 12, 15] {
        let config = MachineConfig::with_grid(grid, grid);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        match compile(&w.netlist, &options) {
            Ok(out) => {
                let program = CompiledProgram::compile_shared(config.clone(), &out.binary)?;
                points.push(Point {
                    grid,
                    vcpl: out.report.vcpl,
                    sends: out.report.total_sends,
                    rate_khz: config.simulation_rate_khz(out.report.vcpl),
                    program,
                });
            }
            Err(e) => {
                // Small grids may not fit the design (instruction memory).
                println!("{:>6} cores: does not fit: {e}", grid * grid);
            }
        }
    }

    // --- Run every point as one fleet batch ----------------------------
    let fleet = Fleet::new(4);
    let jobs: Vec<SimJob> = points
        .iter()
        .map(|p| SimJob::new(&p.program, VCYCLES))
        .collect();
    let t = Instant::now();
    let outputs = fleet.run(jobs);
    let batch_secs = t.elapsed().as_secs_f64();

    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>8} {:>14}",
        "cores", "VCPL", "rate (kHz)", "speedup", "sends", "instrs/vcycle"
    );
    let base_vcpl = points.first().map(|p| p.vcpl);
    for (p, out) in points.iter().zip(&outputs) {
        let run = out.result.as_ref().expect("sweep point runs clean");
        assert_eq!(run.vcycles_run, VCYCLES);
        let counters = out.machine.counters();
        println!(
            "{:>6} {:>8} {:>12.1} {:>9.2}x {:>8} {:>14.1}",
            p.grid * p.grid,
            p.vcpl,
            p.rate_khz,
            base_vcpl.unwrap() as f64 / p.vcpl as f64,
            p.sends,
            counters.instructions as f64 / counters.vcycles as f64,
        );
    }
    println!(
        "\nmeasured {} sweep points x {VCYCLES} vcycles in {batch_secs:.3}s \
         (one fleet batch, {} workers)",
        outputs.len(),
        fleet.workers()
    );
    Ok(())
}
