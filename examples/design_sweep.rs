//! Design sweep: compile one workload across grid sizes and watch the
//! compiler-predicted scaling — a miniature of the paper's Fig. 7, which
//! uses the compiler's virtual critical-path length (VCPL) as the cycle
//! count per simulated RTL cycle.
//!
//! Run with: `cargo run --release --example design_sweep [workload]`

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::MachineConfig;
use manticore::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cgra".into());
    let w = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (try vta, mc, noc, mm, ...)"));

    println!("workload: {} ({} nets)", w.name, w.netlist.nets().len());
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>8}",
        "cores", "VCPL", "rate (kHz)", "speedup", "sends"
    );

    let mut base_vcpl = None;
    for grid in [1usize, 2, 3, 5, 7, 9, 12, 15] {
        let config = MachineConfig::with_grid(grid, grid);
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        match compile(&w.netlist, &options) {
            Ok(out) => {
                let vcpl = out.report.vcpl;
                let base = *base_vcpl.get_or_insert(vcpl);
                println!(
                    "{:>6} {:>8} {:>12.1} {:>9.2}x {:>8}",
                    grid * grid,
                    vcpl,
                    config.simulation_rate_khz(vcpl),
                    base as f64 / vcpl as f64,
                    out.report.total_sends
                );
            }
            Err(e) => {
                // Small grids may not fit the design (instruction memory).
                println!("{:>6} does not fit: {e}", grid * grid);
            }
        }
    }
    Ok(())
}
