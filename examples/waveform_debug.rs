//! Debugging a failing design: assertions raise precise exceptions that
//! stall the grid and hand control to the host — this example shows the
//! failure surfacing with its Vcycle number, then uses the reference
//! evaluator to inspect the cycle-by-cycle state around the failure (the
//! software stand-in for waveform debugging, which the paper leaves as
//! future work).
//!
//! Run with: `cargo run --example waveform_debug`

use manticore::prelude::*;
use manticore::SimError;

fn build_buggy() -> manticore::netlist::Netlist {
    // A parity accumulator with an off-by-one "specification": the designer
    // asserts the counter never reaches 37... it does.
    let mut b = NetlistBuilder::new("buggy");
    let count = b.reg("count", 16, 0);
    let step = b.lit(1, 16);
    let next = b.add(count.q(), step);
    b.set_next(count, next);
    let parity = b.reg("parity", 1, 0);
    let bit = b.bit(count.q(), 0);
    let p_next = b.xor(parity.q(), bit);
    b.set_next(parity, p_next);
    b.output("count", count.q());
    b.output("parity", parity.q());

    let bad = b.lit(37, 16);
    let ok = b.ne(count.q(), bad);
    b.expect_true(ok, "count must never reach 37");

    b.finish_build().unwrap()
}

fn main() {
    let netlist = build_buggy();

    // Run on the machine: the EXPECT fires, the grid stalls, the host
    // reports the failure precisely.
    let mut sim =
        ManticoreSim::compile(&netlist, MachineConfig::with_grid(2, 2)).expect("compiles");
    let failing_cycle = match sim.run(1_000) {
        Err(SimError::Machine(MachineError::AssertFailed { message, vcycle })) => {
            println!("machine: assertion failed at Vcycle {vcycle}: {message}");
            vcycle
        }
        other => panic!("expected an assertion failure, got {other:?}"),
    };

    // "Waveform" inspection: replay on the reference evaluator and dump
    // the signals around the failing cycle.
    println!("\n cycle | count | parity");
    println!("-------+-------+-------");
    let mut eval = Evaluator::new(&netlist);
    for cycle in 0..=failing_cycle + 2 {
        let ev = eval.step();
        if cycle + 4 >= failing_cycle {
            println!(
                "{:>6} | {:>5} | {:>6} {}",
                cycle,
                eval.output_value("count").unwrap().to_u64(),
                eval.output_value("parity").unwrap().to_u64(),
                if ev.failed_expects.is_empty() {
                    ""
                } else {
                    "  <-- FAIL"
                }
            );
        }
    }
}
