//! Mining rig: the paper's `bc` benchmark end to end — run the SHA-256
//! miner on the Verilator-analog baseline and on Manticore, and compare
//! simulation rates the way Table 3 does.
//!
//! Run with: `cargo run --release --example mining_rig`

use manticore::prelude::*;
use manticore::refsim::{ParallelSim, SerialSim, Tape};
use manticore::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = workloads::bc();
    let cycles = 2_000;

    // --- Baseline: serial software simulation ------------------------
    let tape = Tape::compile(&netlist)?;
    println!("bc step size: {} ops/cycle", tape.step_size());
    let mut serial = SerialSim::new(&tape);
    let s = serial.run(cycles);
    println!(
        "serial baseline : {:>8.1} kHz ({} cycles in {:.3}s)",
        s.rate_khz(),
        s.cycles,
        s.seconds
    );

    // --- Baseline: multithreaded macro-tasks -------------------------
    for threads in [2, 4] {
        let par = ParallelSim::new(&tape, threads, 64);
        let r = par.run(cycles);
        println!(
            "parallel x{threads}     : {:>8.1} kHz ({} macro-tasks)",
            r.stats.rate_khz(),
            par.num_tasks()
        );
    }

    // --- Manticore ----------------------------------------------------
    let config = MachineConfig::default(); // 15×15 grid @ 475 MHz
    let mut sim = ManticoreSim::compile(&netlist, config)?;
    let outcome = sim.run(cycles)?;
    let report = &sim.compile_output().report;
    println!(
        "manticore 15x15 : {:>8.1} kHz predicted (VCPL {} over {} cores), {} shares found",
        sim.simulation_rate_khz(),
        report.vcpl,
        report.cores_used,
        outcome.displays.len()
    );
    println!(
        "machine counters: {} compute cycles, {} instructions, {} sends",
        sim.machine().counters().compute_cycles,
        sim.machine().counters().instructions,
        sim.machine().counters().sends
    );
    Ok(())
}
