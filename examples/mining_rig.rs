//! Mining rig: the paper's `bc` benchmark as an actual *rig* — one
//! compiled miner design, many concurrent instances searching disjoint
//! nonce ranges on the fleet engine (compile-once / run-many) in
//! lane-batched gangs (fetch-once / run-K).
//!
//! The original version of this example compared one miner against the
//! Verilator-analog baseline the way Table 3 does; that comparison lives
//! on in `table3_performance`. Here the design is compiled **once**
//! (binary, replay tape, fused micro-op streams) and shared by every rig:
//! each job pokes its pipelines' `nonce*` registers to a different
//! starting range, and the fleet's work-stealing pool runs the rigs in
//! lockstep gangs of `lanes` — one micro-op fetch per gang instead of one
//! per rig — with results back in rig order regardless of scheduling.
//!
//! Run with: `cargo run --release --example mining_rig [rigs] [lanes]`
//!
//! **Scenario-tree mode** (`cargo run --release --example mining_rig
//! explore [lanes]`): instead of a fixed grid of disjoint ranges, the rig
//! *searches* nonce space as a coverage-guided tree — one warm miner is
//! checkpointed, forked into gangs of `lanes` children with fuzzed
//! `nonce*` registers, and the children that toggle new datapath bits
//! become the next generation's fork points. Same compiled program, same
//! fleet pool; the tree replaces the range plan.

use manticore::fleet::{ExploreConfig, FleetJob, FleetSim};
use manticore::isa::MachineConfig;
use manticore::workloads;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().nth(1).as_deref() == Some("explore") {
        return explore();
    }
    let rigs: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rigs must be a number"))
        .unwrap_or(8);
    let lanes: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("lanes must be a number"))
        .unwrap_or(4);
    let cycles = 500;
    let pipes = 6; // bc() builds 6 hash pipelines

    let netlist = workloads::bc();
    let config = MachineConfig::default(); // 15×15 grid @ 475 MHz

    // --- Compile once --------------------------------------------------
    let t0 = Instant::now();
    let fleet = FleetSim::compile(&netlist, config, 4)?;
    let compile_secs = t0.elapsed().as_secs_f64();
    let report = &fleet.output().report;
    let rate_khz = fleet
        .program()
        .config()
        .simulation_rate_khz(fleet.program().vcycle_len());
    println!(
        "compiled bc once in {compile_secs:.2}s: VCPL {} over {} cores, \
         {rate_khz:.1} kHz predicted per instance",
        report.vcpl, report.cores_used
    );

    // --- Build the rig: disjoint nonce ranges per instance -------------
    let jobs: Result<Vec<FleetJob>, _> = (0..rigs)
        .map(|rig| {
            let mut job = fleet.job(cycles);
            for pipe in 0..pipes {
                // Each pipe of each rig starts a distinct 2^24 range.
                let start = (rig * pipes + pipe) << 24;
                job = job.with_reg(&format!("nonce{pipe}"), start)?;
            }
            Ok::<_, manticore::SimError>(job)
        })
        .collect();
    let jobs = jobs?;

    // --- Run the whole rig on the fleet, `lanes` rigs per gang ---------
    let t1 = Instant::now();
    let runs = fleet.run_ganged(jobs, lanes);
    let fleet_secs = t1.elapsed().as_secs_f64();

    println!(
        "\n{:>4} {:>12} {:>8} {:>14}",
        "rig", "nonce0 start", "shares", "csum"
    );
    let mut total_shares = 0usize;
    for run in &runs {
        let outcome = run.result.as_ref().expect("rig run succeeds");
        let csum = run.sim().read_rtl_reg_by_name("csum").unwrap().to_u64();
        total_shares += outcome.displays.len();
        println!(
            "{:>4} {:>12x} {:>8} {:>14x}",
            run.index,
            (run.index as u64 * pipes) << 24,
            outcome.displays.len(),
            csum
        );
    }

    let simulated = rigs * cycles;
    println!(
        "\n{rigs} rigs x {cycles} cycles in {fleet_secs:.3}s on {} workers \
         in gangs of {lanes} ({:.1} rig-kcycles/s), {total_shares} shares found",
        fleet.workers(),
        simulated as f64 / fleet_secs / 1e3,
    );
    println!(
        "compile amortized: once for the whole rig vs {rigs}x under \
         compile-per-instance ({:.2}s saved)",
        compile_secs * (rigs.saturating_sub(1)) as f64
    );
    Ok(())
}

/// Scenario-tree mode: checkpoint/fork exploration of nonce space.
fn explore() -> Result<(), Box<dyn std::error::Error>> {
    let lanes: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("lanes must be a number"))
        .unwrap_or(16);

    let netlist = workloads::bc();
    let t0 = Instant::now();
    let fleet = FleetSim::compile(&netlist, MachineConfig::with_grid(6, 6), 4)?;
    println!(
        "compiled bc once in {:.2}s; exploring nonce space as a scenario tree",
        t0.elapsed().as_secs_f64()
    );

    // Fuzz every pipe's nonce counter; everything else (SHA state, the
    // round counter the design self-checks) evolves from the fork point.
    let stimulus: Vec<String> = (0..6).map(|p| format!("nonce{p}")).collect();
    let stimulus: Vec<&str> = stimulus.iter().map(String::as_str).collect();
    let cfg = ExploreConfig {
        lanes,
        rounds: 40,
        vcycles_per_round: 25,
        warmup_vcycles: 2,
        frontier_cap: 8,
        seed: 0,
        stimulus: Vec::new(),
    };

    let t1 = Instant::now();
    let report = fleet.explore(&stimulus, &cfg)?;
    let secs = t1.elapsed().as_secs_f64();
    println!(
        "\n{} forked miners over {} rounds in {secs:.3}s \
         ({:.0} scenarios/s on {} workers)",
        report.scenarios,
        report.rounds_run,
        report.scenarios as f64 / secs,
        fleet.workers(),
    );
    println!(
        "coverage: {} register bits toggled, {} shares displayed, \
         {} asserts, {} faults, frontier peak {}",
        report.covered_bits, report.displays, report.asserts, report.faults, report.frontier_peak,
    );
    Ok(())
}
