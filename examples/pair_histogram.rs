//! The measurement behind the micro-op fusion rules: a histogram of
//! adjacent-position non-NOP instruction pairs across all nine workloads
//! compiled for the paper's 15×15 grid.
//!
//! The machine's micro-op replay engine (`machine/src/uops.rs`) fuses the
//! top patterns this prints — `Alu→Alu` (58.7% of adjacent pairs at the
//! time of writing), `Mux→Mux`, `Send→Send`, `Alu→Send` — and skips the
//! ones that never occur (`Set` chains, predicated stores). Re-run after
//! compiler changes to check whether the fusion set still matches the
//! emitted code:
//!
//! `cargo run --release --example pair_histogram`
use std::collections::HashMap;

use manticore::compiler::{compile, CompileOptions};
use manticore::isa::{Instruction, MachineConfig};
use manticore::workloads;

fn kind(i: &Instruction) -> &'static str {
    match i {
        Instruction::Nop => "Nop",
        Instruction::Set { .. } => "Set",
        Instruction::Alu { .. } => "Alu",
        Instruction::AddCarry { .. } => "AddCarry",
        Instruction::SubBorrow { .. } => "SubBorrow",
        Instruction::Mux { .. } => "Mux",
        Instruction::Slice { .. } => "Slice",
        Instruction::Custom { .. } => "Custom",
        Instruction::Predicate { .. } => "Predicate",
        Instruction::LocalLoad { .. } => "LocalLoad",
        Instruction::LocalStore { .. } => "LocalStore",
        Instruction::GlobalLoad { .. } => "GlobalLoad",
        Instruction::GlobalStore { .. } => "GlobalStore",
        Instruction::Send { .. } => "Send",
        Instruction::Expect { .. } => "Expect",
    }
}

fn main() {
    let mut pairs: HashMap<(&str, &str), u64> = HashMap::new();
    let mut singles: HashMap<&str, u64> = HashMap::new();
    let mut total_ops = 0u64;
    let mut adjacent = 0u64;
    for w in workloads::all() {
        let config = MachineConfig::default();
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let out = match compile(&w.netlist, &options) {
            Ok(o) => o,
            Err(e) => {
                println!("{}: compile failed: {e}", w.name);
                continue;
            }
        };
        for core in &out.binary.cores {
            let mut prev: Option<(usize, &Instruction)> = None;
            for (pos, instr) in core.body.iter().enumerate() {
                if matches!(instr, Instruction::Nop) {
                    continue;
                }
                total_ops += 1;
                *singles.entry(kind(instr)).or_default() += 1;
                if let Some((ppos, pinstr)) = prev {
                    if pos == ppos + 1 {
                        adjacent += 1;
                        *pairs.entry((kind(pinstr), kind(instr))).or_default() += 1;
                    }
                }
                prev = Some((pos, instr));
            }
        }
    }
    println!("total non-NOP ops: {total_ops}, adjacent pairs: {adjacent}");
    let mut v: Vec<_> = pairs.into_iter().collect();
    v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for ((a, b), n) in v.iter().take(25) {
        println!(
            "{a:>11} -> {b:<11} {n:>8}  ({:.1}%)",
            *n as f64 / adjacent as f64 * 100.0
        );
    }
    let mut s: Vec<_> = singles.into_iter().collect();
    s.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nop mix:");
    for (k, n) in s {
        println!(
            "{k:>11} {n:>8}  ({:.1}%)",
            n as f64 / total_ops as f64 * 100.0
        );
    }
}
